"""Batched-epoch primitives for the vector fleet tier.

The event kernel walks one heap entry at a time; at fleet scale (10^6
concurrent users, hundreds of servers) that is tens of millions of heap
operations per simulated second.  This module provides the columnar
replacement: connection state lives in parallel arrays ("struct of
arrays"), and each FIFO station advances a whole epoch cohort with one
vectorized *max-plus scan* instead of per-event churn.

The scan is exact, not approximate.  For a capacity-1 FIFO with arrival
times ``a_j`` and service times ``s_j`` (jobs indexed in grant order),
let ``C_j = s_0 + ... + s_j``.  The classic Lindley recursion

    start_j  = max(a_j, depart_{j-1})
    depart_j = start_j + s_j

unrolls to ``depart_j = C_{j-1} + max_k<=j (a_k - C_{k-1})`` (with the
carry from the previous epoch entering as ``a_{-1} - C_{-2} = depart
of the last prior job``), which is one ``cumsum`` plus one running
``maximum.accumulate`` — both O(n) vectorized.

A capacity-``c`` pool decomposes into ``c`` independent capacity-1
chains: with FIFO grants, job ``i`` waits on the slot freed by job
``i - c``, so the jobs at positions ``i mod c == r`` form chain ``r``.
The decomposition is exact when service times are uniform within the
cohort (every departure order matches grant order) and a bounded-error
approximation for mixed service times — the crosscheck in
``repro.cluster.vector`` quantifies the delta.

Deadline shedding (``repro.overload`` semantics: a job whose grant time
has passed its deadline releases its slot instantly with zero service)
is solved as a fixpoint: shed flags are causal per chain, so iterating
"scan, re-flag, re-scan" converges to the unique sequential solution;
cohorts that do not converge within the iteration cap fall back to the
exact sequential recursion.

Everything here has a numpy backend and a pure-Python twin
(:func:`make_ops`); numpy is optional, never required.
"""

from __future__ import annotations

import bisect
import heapq
import math

try:  # the vector tier's fast path; every primitive has a Python twin
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the forced fallback
    _np = None

#: Fixpoint iteration cap before the shed solver falls back to the exact
#: sequential recursion (convergence needs one pass per causal "layer" of
#: shed decisions; deep cascades are rare outside saturated overload runs).
MAX_SHED_PASSES = 32


def have_numpy() -> bool:
    """Whether the accelerated backend is importable."""
    return _np is not None


def resolve_backend(name: str = "auto") -> str:
    """Normalise a backend request: 'auto' picks numpy when available."""
    if name in (None, "auto"):
        return "numpy" if _np is not None else "python"
    if name == "numpy":
        if _np is None:
            raise ValueError("numpy backend requested but numpy is not importable")
        return "numpy"
    if name == "python":
        return "python"
    raise ValueError("unknown backend %r (auto | numpy | python)" % (name,))


# -- columnar ops -------------------------------------------------------------------
#
# The minimal array algebra the vector tier needs, with interchangeable
# numpy / list implementations.  Columns are numpy float64/int64/bool
# arrays under _NumpyOps and plain Python lists under _PythonOps; the two
# implementations are drop-in equivalent (same results, different speed).


class _NumpyOps:
    """Columns as numpy arrays."""

    name = "numpy"

    @staticmethod
    def asarray(values, kind: str = "f"):
        dtype = {"f": _np.float64, "i": _np.int64, "b": _np.bool_}[kind]
        return _np.asarray(values, dtype=dtype)

    @staticmethod
    def full(n: int, value, kind: str = "f"):
        dtype = {"f": _np.float64, "i": _np.int64, "b": _np.bool_}[kind]
        return _np.full(n, value, dtype=dtype)

    @staticmethod
    def arange(n: int):
        return _np.arange(n, dtype=_np.int64)

    @staticmethod
    def take(column, indices):
        return column[indices]

    @staticmethod
    def put(column, indices, values) -> None:
        column[indices] = values

    @staticmethod
    def where(mask, a, b):
        return _np.where(mask, a, b)

    @staticmethod
    def maximum(a, b):
        return _np.maximum(a, b)

    @staticmethod
    def add(a, b):
        return a + b

    @staticmethod
    def sub(a, b):
        return a - b

    @staticmethod
    def mul(a, b):
        return a * b

    @staticmethod
    def ge(a, b):
        return a >= b

    @staticmethod
    def le(a, b):
        return a <= b

    @staticmethod
    def gt(a, b):
        return a > b

    @staticmethod
    def and_(a, b):
        return _np.logical_and(a, b)

    @staticmethod
    def not_(a):
        return _np.logical_not(a)

    @staticmethod
    def nonzero(mask):
        return _np.nonzero(mask)[0]

    @staticmethod
    def count(mask) -> int:
        return int(_np.count_nonzero(mask))

    @staticmethod
    def total(column) -> float:
        return float(_np.sum(column))

    @staticmethod
    def argsort(column):
        return _np.argsort(column, kind="stable")

    @staticmethod
    def cumsum(column):
        return _np.cumsum(column)

    @staticmethod
    def searchsorted(column, value) -> int:
        """Count of entries <= `value` in ascending-sorted `column`."""
        return int(_np.searchsorted(column, value, side="right"))

    @staticmethod
    def concat(columns):
        return _np.concatenate(columns)

    @staticmethod
    def tolist(column) -> list:
        return column.tolist()


class _PythonOps:
    """Columns as plain lists — the numpy-free twin."""

    name = "python"

    @staticmethod
    def asarray(values, kind: str = "f"):
        cast = {"f": float, "i": int, "b": bool}[kind]
        return [cast(v) for v in values]

    @staticmethod
    def full(n: int, value, kind: str = "f"):
        cast = {"f": float, "i": int, "b": bool}[kind]
        return [cast(value)] * n

    @staticmethod
    def arange(n: int):
        return list(range(n))

    @staticmethod
    def take(column, indices):
        return [column[i] for i in indices]

    @staticmethod
    def put(column, indices, values) -> None:
        for i, v in zip(indices, values):
            column[i] = v

    @staticmethod
    def _pair(a, b):
        """Broadcast scalars against lists for elementwise helpers."""
        if isinstance(a, list) and not isinstance(b, list):
            return a, [b] * len(a)
        if isinstance(b, list) and not isinstance(a, list):
            return [a] * len(b), b
        return a, b

    @classmethod
    def where(cls, mask, a, b):
        if not isinstance(a, list) and not isinstance(b, list):
            return [a if m else b for m in mask]
        a, b = cls._pair(a, b)
        return [x if m else y for m, x, y in zip(mask, a, b)]

    @classmethod
    def maximum(cls, a, b):
        a, b = cls._pair(a, b)
        return [x if x > y else y for x, y in zip(a, b)]

    @classmethod
    def add(cls, a, b):
        a, b = cls._pair(a, b)
        return [x + y for x, y in zip(a, b)]

    @classmethod
    def sub(cls, a, b):
        a, b = cls._pair(a, b)
        return [x - y for x, y in zip(a, b)]

    @classmethod
    def mul(cls, a, b):
        a, b = cls._pair(a, b)
        return [x * y for x, y in zip(a, b)]

    @classmethod
    def ge(cls, a, b):
        a, b = cls._pair(a, b)
        return [x >= y for x, y in zip(a, b)]

    @classmethod
    def le(cls, a, b):
        a, b = cls._pair(a, b)
        return [x <= y for x, y in zip(a, b)]

    @classmethod
    def gt(cls, a, b):
        a, b = cls._pair(a, b)
        return [x > y for x, y in zip(a, b)]

    @staticmethod
    def and_(a, b):
        return [x and y for x, y in zip(a, b)]

    @staticmethod
    def not_(a):
        return [not x for x in a]

    @staticmethod
    def nonzero(mask):
        return [i for i, m in enumerate(mask) if m]

    @staticmethod
    def count(mask) -> int:
        return sum(1 for m in mask if m)

    @staticmethod
    def total(column) -> float:
        return float(sum(column))

    @staticmethod
    def argsort(column):
        return sorted(range(len(column)), key=column.__getitem__)

    @staticmethod
    def searchsorted(column, value) -> int:
        """Count of entries <= `value` in ascending-sorted `column`."""
        return bisect.bisect_right(column, value)

    @staticmethod
    def cumsum(column):
        out = []
        running = 0.0
        for value in column:
            running += value
            out.append(running)
        return out

    @staticmethod
    def concat(columns):
        out = []
        for column in columns:
            out.extend(column)
        return out

    @staticmethod
    def tolist(column) -> list:
        return list(column)


def make_ops(backend: str = "auto"):
    """The columnar-ops implementation for `backend` (see resolve_backend)."""
    return _NumpyOps if resolve_backend(backend) == "numpy" else _PythonOps


# -- max-plus FIFO scans ------------------------------------------------------------


def fifo_scan(arrive, service, carry: float, ops=None):
    """Advance one capacity-1 FIFO over a cohort: (start, depart, carry').

    `arrive` must be sorted in grant (FIFO) order; `carry` is the previous
    cohort's last departure.  Exact — this *is* the Lindley recursion,
    evaluated as cumsum + running max on the numpy backend.
    """
    ops = ops or make_ops()
    n = len(arrive)
    if n == 0:
        return arrive, arrive, carry
    if ops.name == "numpy":
        service = _np.asarray(service, dtype=_np.float64)
        cumulative = _np.cumsum(service)
        shifted = cumulative - service  # C_{j-1}
        level = _np.maximum.accumulate(
            _np.asarray(arrive, dtype=_np.float64) - shifted)
        start = shifted + _np.maximum(level, carry)
        depart = start + service
        return start, depart, float(depart[-1])
    start = [0.0] * n
    depart = [0.0] * n
    previous = carry
    for j in range(n):
        begin = arrive[j] if arrive[j] > previous else previous
        previous = begin + service[j]
        start[j] = begin
        depart[j] = previous
    return start, depart, previous


#: Sentinel: this station has granted heterogeneous service times, so the
#: round-robin chain decomposition is no longer provably first-free.
_MIXED = object()


class Station:
    """One FIFO station drained cohort-at-a-time across epochs.

    Two dispatch models, picked per cohort:

    * **Chains** — capacity ``c`` as ``c`` independent columns; job ``j``
      waits on job ``j - c``.  Fully vectorized (one :func:`fifo_scan` per
      chain), and *exact* precisely when every grant the station has ever
      made took the same service time: with uniform service the server
      that frees first is the one that started first, so round-robin IS
      first-free dispatch.  ``carries`` holds each chain's last departure
      and ``count`` the total jobs ever granted, keeping chain membership
      consistent across epoch boundaries.
    * **First-free heap** — the event kernel's ``Resource`` semantics
      (head of the FIFO takes the first token released), O(n log c)
      sequential.  Used the moment a cohort mixes service times or sheds
      on a multi-server station, where chains would serialise jobs behind
      a slow predecessor while other slots idle — inflating departures
      and backlog by integer factors under burst.

    Capacity-1 stations are a single chain, exact by construction, and
    always take the vector path.

    :meth:`drain` optionally applies deadline shedding with the exact
    dequeue semantics of :class:`repro.cluster.fleet.Fleet`: a job whose
    grant instant is at or past its deadline is shed — it occupies its
    slot for zero seconds (acquire-and-release) and departs immediately.
    """

    __slots__ = ("ops", "capacity", "count", "carries", "_uniform")

    def __init__(self, capacity: int = 1, backend: str = "auto"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.ops = make_ops(backend)
        self.capacity = capacity
        self.count = 0
        self.carries = [0.0] * capacity
        self._uniform = None  # no grants yet; float once seen; _MIXED after

    # -- internal: one full-cohort scan against trial carries ----------------------

    def _scan(self, arrive, service, carries):
        ops = self.ops
        n = len(arrive)
        if self.capacity == 1:
            start, depart, carry = fifo_scan(arrive, service, carries[0], ops)
            return start, depart, [carry]
        if ops.name == "numpy":
            # All chains at once: pad the cohort to a multiple of `capacity`
            # and reshape row-major — element (i, j) is cohort position
            # ``i*c + j``, whose chain ``(count + i*c + j) % c`` is constant
            # down each column.  One 2-D Lindley scan (cumsum + running max
            # along axis 0) then advances every chain together.  Padded
            # tail jobs carry arrive=0, service=0: their start clamps to
            # the chain's prior departure and adds nothing, so the last row
            # is exactly each chain's new carry.
            c = self.capacity
            pad = (-n) % c
            arrive_v = _np.asarray(arrive, dtype=_np.float64)
            service_v = _np.asarray(service, dtype=_np.float64)
            if pad:
                arrive_v = _np.concatenate([arrive_v, _np.zeros(pad)])
                service_v = _np.concatenate([service_v, _np.zeros(pad)])
            arrive_2d = arrive_v.reshape(-1, c)
            service_2d = service_v.reshape(-1, c)
            carry_row = _np.asarray(
                [carries[(self.count + j) % c] for j in range(c)])
            cumulative = _np.cumsum(service_2d, axis=0)
            shifted = cumulative - service_2d  # C_{j-1} per chain
            level = _np.maximum.accumulate(arrive_2d - shifted, axis=0)
            start_2d = shifted + _np.maximum(level, carry_row)
            depart_2d = start_2d + service_2d
            out = [0.0] * c
            last_row = depart_2d[-1, :]
            for j in range(c):
                out[(self.count + j) % c] = float(last_row[j])
            return (start_2d.reshape(-1)[:n], depart_2d.reshape(-1)[:n], out)
        start = [0.0] * n
        depart = [0.0] * n
        out = list(carries)
        for j in range(n):
            chain = (self.count + j) % self.capacity
            begin = arrive[j] if arrive[j] > out[chain] else out[chain]
            out[chain] = begin + service[j]
            start[j] = begin
            depart[j] = out[chain]
        return start, depart, out

    def _scan_exact(self, arrive, service, deadline=None):
        """First-free dispatch over `capacity` slots — the event kernel's
        ``Resource`` grant order, exact for heterogeneous service.  Handles
        deadline shedding inline (no fixpoint needed: the recursion is
        causal job-by-job)."""
        ops = self.ops
        n = len(arrive)
        avail = list(self.carries)
        heapq.heapify(avail)
        arrive_l = ops.tolist(arrive)
        service_l = ops.tolist(service)
        deadline_l = None if deadline is None else ops.tolist(deadline)
        start = [0.0] * n
        depart = [0.0] * n
        shed = None if deadline is None else [False] * n
        for j in range(n):
            free = avail[0]
            at = arrive_l[j]
            begin = at if at > free else free
            if deadline_l is not None and begin >= deadline_l[j]:
                shed[j] = True
                held = begin  # acquire-and-release: zero service
            else:
                held = begin + service_l[j]
            heapq.heapreplace(avail, held)
            start[j] = begin
            depart[j] = held
        if ops.name == "numpy":
            start = _np.asarray(start)
            depart = _np.asarray(depart)
            if shed is not None:
                shed = _np.asarray(shed, dtype=_np.bool_)
        return start, depart, shed, avail

    def _cohort_uniform(self, service):
        """The cohort's single service time, or None if it mixes values."""
        ops = self.ops
        if ops.name == "numpy":
            column = _np.asarray(service, dtype=_np.float64)
            low, high = float(column.min()), float(column.max())
        else:
            low, high = min(service), max(service)
        return low if low == high else None

    def _drain_sequential(self, arrive, service, deadline):
        """Exact per-job recursion with shedding — the fixpoint fallback."""
        n = len(arrive)
        carries = list(self.carries)
        start = [0.0] * n
        depart = [0.0] * n
        shed = [False] * n
        for j in range(n):
            chain = (self.count + j) % self.capacity
            begin = arrive[j] if arrive[j] > carries[chain] else carries[chain]
            if begin >= deadline[j]:
                shed[j] = True
                held = begin  # acquire-and-release: zero service
            else:
                held = begin + service[j]
            carries[chain] = held
            start[j] = begin
            depart[j] = held
        ops = self.ops
        if ops.name == "numpy":
            start = _np.asarray(start)
            depart = _np.asarray(depart)
            shed = _np.asarray(shed, dtype=_np.bool_)
        return start, depart, shed, carries

    # -- public ---------------------------------------------------------------------

    def drain(self, arrive, service, deadline=None):
        """Grant a cohort through the station: (start, depart, shed).

        `arrive` must already be in grant order (sorted by station-entry
        time).  With `deadline` given (absolute per-job deadlines), jobs
        expired at their grant instant are shed with zero service and
        ``shed`` marks them; otherwise ``shed`` is None.
        """
        ops = self.ops
        n = len(arrive)
        if n == 0:
            return arrive, arrive, (None if deadline is None else arrive)
        if self.capacity > 1:
            uniform = self._cohort_uniform(service)
            chain_exact = (deadline is None and uniform is not None
                           and (self._uniform is None
                                or self._uniform == uniform))
            if not chain_exact:
                self._uniform = _MIXED
                start, depart, shed, carries = self._scan_exact(
                    arrive, service, deadline)
                self.carries = carries
                self.count += n
                return start, depart, shed
            self._uniform = uniform
        if deadline is None:
            start, depart, carries = self._scan(arrive, service, self.carries)
            self.carries = carries
            self.count += n
            return start, depart, None
        shed = ops.full(n, False, "b")
        start = depart = None
        carries = self.carries
        converged = False
        for _ in range(MAX_SHED_PASSES):
            effective = ops.where(shed, 0.0, service)
            start, depart, carries = self._scan(arrive, effective, self.carries)
            flagged = ops.ge(start, deadline)
            if ops.count(flagged) == ops.count(ops.and_(flagged, shed)) \
                    and ops.count(shed) == ops.count(flagged):
                converged = True
                break
            shed = flagged
        if not converged:
            start, depart, shed, carries = self._drain_sequential(
                arrive, service, deadline)
        self.carries = carries
        self.count += n
        return start, depart, shed


# -- busy-time integrals ------------------------------------------------------------


def overlap_sum(start, depart, lo: float, hi: float, ops=None) -> float:
    """Total overlap of the busy intervals [start_j, depart_j) with [lo, hi).

    The vector tier's replacement for :meth:`Resource.utilisation`'s
    continuous integral: utilisation over a window is this sum divided by
    ``window * capacity``.  Exact for any interval set.
    """
    ops = ops or make_ops()
    if len(start) == 0:
        return 0.0
    if ops.name == "numpy":
        clipped = _np.minimum(depart, hi) - _np.maximum(start, lo)
        return float(_np.sum(_np.maximum(clipped, 0.0)))
    total = 0.0
    for s, d in zip(start, depart):
        span = min(d, hi) - max(s, lo)
        if span > 0.0:
            total += span
    return total


def window_overlaps(start, depart, lo: float, hi: float, windows: int,
                    ops=None) -> list:
    """Per-window busy overlap across `windows` equal slices of [lo, hi)."""
    if windows < 1 or hi <= lo:
        raise ValueError("need hi > lo and windows >= 1")
    width = (hi - lo) / windows
    return [
        overlap_sum(start, depart, lo + w * width, lo + (w + 1) * width, ops)
        for w in range(windows)
    ]


# -- cohort planners ----------------------------------------------------------------


def water_fill(backlogs, jobs: int, per_job_s: float) -> list:
    """Split `jobs` across targets so projected backlogs level out.

    The cohort form of join-the-shortest-queue: each job adds
    ``per_job_s`` of backlog, and the emptiest targets fill first until
    every chosen target sits at the common water level.  Returns integer
    counts summing to `jobs` (largest-remainder rounding, index
    tie-breaks — fully deterministic).  A backlog of ``math.inf`` marks a
    target as unavailable (down server): it receives zero.
    """
    targets = len(backlogs)
    counts = [0] * targets
    if jobs <= 0:
        return counts
    live = [i for i in range(targets) if backlogs[i] != math.inf]
    if not live:
        raise ValueError("no live targets to place jobs on")
    weight = per_job_s if per_job_s > 0.0 else 1e-12
    order = sorted(live, key=lambda i: (backlogs[i], i))
    level = 0.0
    chosen = 1
    prefix = 0.0
    for k in range(1, len(order) + 1):
        prefix += backlogs[order[k - 1]]
        level = (prefix + jobs * weight) / k
        chosen = k
        if k == len(order) or level <= backlogs[order[k]]:
            break
    shares = [
        max(0.0, (level - backlogs[order[i]]) / weight) for i in range(chosen)
    ]
    floors = [int(s) for s in shares]
    remainder = jobs - sum(floors)
    by_fraction = sorted(
        range(chosen), key=lambda i: (-(shares[i] - floors[i]), order[i]))
    for i in by_fraction[:remainder]:
        floors[i] += 1
    for i in range(chosen):
        counts[order[i]] = floors[i]
    return counts


def interleave_targets(counts, ops=None):
    """Expand per-target counts into an interleaved assignment column.

    ``counts = [2, 1]`` yields ``[0, 1, 0]`` — each target's jobs spread
    evenly through the cohort (fractional-position merge), so a burst
    split across servers arrives interleaved the way a per-request
    scheduler would send it, not in contiguous runs.
    """
    ops = ops or make_ops()
    total = sum(counts)
    if total == 0:
        return ops.asarray([], "i")
    if ops.name == "numpy":
        sizes = _np.asarray(counts, dtype=_np.int64)
        targets = _np.repeat(_np.arange(len(counts), dtype=_np.int64), sizes)
        group = _np.repeat(sizes, sizes)
        offsets = _np.repeat(_np.cumsum(sizes) - sizes, sizes)
        within = _np.arange(total, dtype=_np.int64) - offsets
        position = (within + 0.5) / group
        return targets[_np.argsort(position, kind="stable")]
    slots = []
    for target, n in enumerate(counts):
        for j in range(n):
            slots.append(((j + 0.5) / n, target, j))
    slots.sort()
    return [target for _, target, _ in slots]


def spread_mask(n: int, picks: int, ops=None):
    """A boolean column with `picks` of `n` slots True, evenly spread.

    Bresenham spacing: slot ``i`` is picked iff ``(i * picks) % n < picks``.
    Used to choose *which* jobs of a server's cohort spill to the CPU —
    spread through the cohort like the per-request rule would, not a
    contiguous tail.
    """
    ops = ops or make_ops()
    if n <= 0:
        return ops.asarray([], "b")
    picks = max(0, min(picks, n))
    if ops.name == "numpy":
        index = _np.arange(n, dtype=_np.int64)
        return (index * picks) % n < picks
    return [(i * picks) % n < picks for i in range(n)]
