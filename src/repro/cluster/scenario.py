"""Scenario configuration, the run loop, and the cluster report.

A :class:`ClusterScenario` bundles everything one rack-scale experiment
needs — fleet shape, workload, load discipline, scheduler, seed — and
:func:`run_scenario` turns it into a :class:`ClusterReport`: throughput,
p50/p99/p999 latency, per-channel DSA utilisation, spill counts, and
(optionally) a Chrome-trace file for ``about:tracing``.

Reports are rendered deterministically: no wall-clock values, floats
formatted from the same arithmetic every run, JSON serialised with sorted
keys.  Identical seeds ⇒ byte-identical ``to_json()`` output (enforced by
``tests/cluster/test_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.server import Placement, Ulp

from repro.cluster.fleet import Fleet, ServiceProfile
from repro.cluster.kernel import Simulator
from repro.cluster.loadgen import (
    BurstyArrivals,
    ClosedLoopLoad,
    OpenLoopLoad,
    PoissonArrivals,
    RequestMix,
    TraceArrivals,
)
from repro.cluster.metrics import MetricsRegistry, TraceRecorder
from repro.cluster.sched import AdaptiveSpillScheduler, make_scheduler
from repro.overload.policy import (
    MultiTenantOverloadPolicy,
    OverloadConfig,
    OverloadPolicy,
)


@dataclass
class ClusterScenario:
    """One rack-scale experiment, fully specified (and fully seeded)."""

    # fleet shape
    servers: int = 4
    channels: int = 6
    threads: int = 10
    # workload shape: "rpc" = independent request/response (this module);
    # "replication" = multi-hop replicated-storage DAGs (each client
    # operation fans out into per-hop fleet requests with quorum joins —
    # see repro.replication, which subclasses this scenario).
    workload: str = "rpc"
    ulp: str = "tls"
    placement: str = "smartdimm"
    message_bytes: int = 16384
    mix: RequestMix = None  # overrides message_bytes when given
    # load discipline
    mode: str = "closed"  # "closed" | "open"
    connections: int = 512
    think_s: float = 0.0
    arrival: str = "poisson"  # open loop: "poisson" | "bursty" | "trace"
    rate_rps: float = None  # None -> 70% of the fixed-point capacity
    burst_rps: float = None  # None -> 1.4x capacity
    base_s: float = 0.01
    burst_s: float = 0.005
    trace_times: list = field(default_factory=list)
    # schedule & device
    scheduler: str = AdaptiveSpillScheduler.name
    spill_factor: float = 1.0
    dsa_bytes_per_sec: float = None  # None -> channel-bandwidth DSA (paper)
    # overload control (all off by default; see repro.overload)
    deadline_s: float = None  # per-request relative deadline
    shed_expired: bool = True  # False: deadlines measured, never enforced
    admission: str = "none"  # "none" | "codel"
    codel_target_s: float = None  # None -> deadline_s / 5
    codel_interval_s: float = None  # None -> 4 x target
    dsa_queue_limit: int = None  # bounded DSA queues (per channel)
    cpu_queue_limit: int = None  # bounded worker queues (per server)
    brownout_factor: float = 1.0  # <1: degrade DSA stage under pressure
    # multi-tenant QoS (see repro.qos): tenants is a list of TenantSpec;
    # empty/None keeps the single-tenant FIFO fleet byte-identical
    tenants: list = None
    qos_mode: str = "drr"  # "drr" | "fifo" (fifo: tagged but unarbitrated)
    qos_isolate: bool = True  # False: shared CoDel/brownout (contrast arm)
    qos_quantum_s: float = None  # None -> one mean request's service time
    # run control
    duration_s: float = 0.02
    warmup_s: float = 0.005
    seed: int = 1
    timeline_windows: int = 10
    trace_path: str = None
    # fidelity tier: "event" (DES kernel) | "vector" (batched-epoch columns)
    tier: str = "event"
    epoch_s: float = None  # vector tier epoch length; None -> duration / 50
    vector_backend: str = "auto"  # "auto" | "numpy" | "python"
    # vector-tier open-loop arrivals: "replay" consumes the RNG draw-for-draw
    # like the event tier (crosscheckable); "batch" generates the same
    # process with bulk numpy draws (fast, statistically equivalent)
    arrival_stream: str = "replay"

    def resolved_mix(self) -> RequestMix:
        """The explicit mix, or a single-size mix of `message_bytes`."""
        return self.mix if self.mix is not None else RequestMix.fixed(self.message_bytes)

    def build_profile(self) -> ServiceProfile:
        """Price this scenario's routes via the analytic server model."""
        return ServiceProfile(
            Ulp(self.ulp),
            Placement(self.placement),
            mean_message_bytes=self.resolved_mix().mean_size,
            threads=self.threads,
            connections=self.connections,
            channels_per_server=self.channels,
            dsa_bytes_per_sec=self.dsa_bytes_per_sec,
        )

    def build_overload(self) -> OverloadPolicy:
        """The scenario's overload policy, or None when every knob is off
        (the pre-overload fast path: zero behaviour change).  With tenants
        configured, the policy is per-tenant (class deadlines, isolated
        CoDel/brownout state)."""
        config = OverloadConfig(
            deadline_s=self.deadline_s,
            shed_expired=self.shed_expired,
            admission=self.admission,
            codel_target_s=self.codel_target_s,
            codel_interval_s=self.codel_interval_s,
            dsa_queue_limit=self.dsa_queue_limit,
            cpu_queue_limit=self.cpu_queue_limit,
            brownout_factor=self.brownout_factor,
        )
        if not config.enabled:
            return None
        if self.tenants:
            return MultiTenantOverloadPolicy(
                config, [spec.name for spec in self.tenants],
                isolate=self.qos_isolate)
        return OverloadPolicy(config)

    def build_qos(self):
        """The scenario's :class:`repro.qos.tenants.QosPolicy`, or None
        when no tenants are configured (single-tenant FIFO fleet)."""
        if not self.tenants:
            return None
        from repro.qos.tenants import QosPolicy

        return QosPolicy(self.tenants, mode=self.qos_mode,
                         quantum_s=self.qos_quantum_s)


@dataclass
class ClusterReport:
    """What a scenario run measured (deterministic; no wall-clock values)."""

    scenario: dict
    rps: float
    completed: int
    submitted: int
    spilled: int
    dsa_served: int
    bytes_out: int
    latency: dict  # LogHistogram.summary(), seconds
    wait_cpu: dict
    wait_dsa: dict
    channel_utilisation: list  # [server][channel] busy fraction
    cpu_utilisation: list  # [server]
    channel_util_timeline: list  # [server][channel][window]
    model_rps_per_server: float
    model_bottleneck: str
    events_processed: int
    chaos: dict = None  # FleetFaultInjector.report() when chaos was injected
    overload: dict = None  # Fleet.overload_report() when control was enabled
    qos: dict = None  # Fleet.qos_report() when tenants were configured

    @property
    def spill_fraction(self) -> float:
        return self.spilled / self.submitted if self.submitted else 0.0

    def to_dict(self) -> dict:
        """The full report as plain JSON-serialisable types."""
        out = {
            "scenario": self.scenario,
            "rps": self.rps,
            "completed": self.completed,
            "submitted": self.submitted,
            "spilled": self.spilled,
            "dsa_served": self.dsa_served,
            "bytes_out": self.bytes_out,
            "latency_s": self.latency,
            "wait_cpu_s": self.wait_cpu,
            "wait_dsa_s": self.wait_dsa,
            "channel_utilisation": self.channel_utilisation,
            "cpu_utilisation": self.cpu_utilisation,
            "channel_util_timeline": self.channel_util_timeline,
            "model_rps_per_server": self.model_rps_per_server,
            "model_bottleneck": self.model_bottleneck,
            "events_processed": self.events_processed,
        }
        if self.chaos is not None:
            out["chaos"] = self.chaos
        if self.overload is not None:
            out["overload"] = self.overload
        if self.qos is not None:
            out["qos"] = self.qos
        return out

    def to_json(self) -> str:
        """Deterministic (sorted-keys) JSON rendering of the report."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    # -- rendering ------------------------------------------------------------------

    @staticmethod
    def _us(seconds) -> str:
        return "n/a" if seconds is None else "%.1fus" % (seconds * 1e6)

    def table(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        s = self.scenario
        lines = []
        lines.append(
            "cluster: %d servers x %d channels (%d threads/server), "
            "ulp=%s placement=%s sched=%s seed=%d"
            % (s["servers"], s["channels"], s["threads"], s["ulp"],
               s["placement"], s["scheduler"], s["seed"])
        )
        if s["mode"] == "closed":
            lines.append(
                "load: closed loop, %d connections, think %s"
                % (s["connections"], self._us(s["think_s"]))
            )
        else:
            lines.append("load: open loop, %s arrivals" % s["arrival"])
        window_ms = (s["duration_s"] - s["warmup_s"]) * 1e3
        lines.append(
            "window: %.1fms measured after %.1fms warmup, %d events"
            % (window_ms, s["warmup_s"] * 1e3, self.events_processed)
        )
        fleet_model = self.model_rps_per_server * s["servers"]
        deviation = (
            100.0 * (self.rps - fleet_model) / fleet_model if fleet_model else 0.0
        )
        lines.append(
            "throughput: %s req/s (analytic fixed point: %s, %+.1f%%; "
            "model bottleneck: %s)"
            % (_si(self.rps), _si(fleet_model), deviation, self.model_bottleneck)
        )
        lat = self.latency
        lines.append(
            "latency: p50=%s p99=%s p999=%s mean=%s max=%s (%d requests)"
            % (self._us(lat["p50"]), self._us(lat["p99"]), self._us(lat["p999"]),
               self._us(lat["mean"]), self._us(lat["max"]), lat["count"])
        )
        lines.append(
            "spill: %d of %d requests (%.1f%%) onloaded to CPU; "
            "%d served by DSAs"
            % (self.spilled, self.submitted, 100.0 * self.spill_fraction,
               self.dsa_served)
        )
        lines.append("per-channel DSA utilisation:")
        for index, channels in enumerate(self.channel_utilisation):
            lines.append(
                "  server%d: %s   (cpu %.0f%%)"
                % (index, " ".join("%.2f" % u for u in channels),
                   100.0 * self.cpu_utilisation[index])
            )
        return "\n".join(lines)


def _si(value: float) -> str:
    """1234567 -> '1.23M' (deterministic float formatting)."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= threshold:
            return "%.2f%s" % (value / threshold, suffix)
    return "%.0f" % value


def _build_arrivals(scenario: ClusterScenario, capacity_rps: float):
    if scenario.arrival == "poisson":
        rate = scenario.rate_rps or 0.7 * capacity_rps
        return PoissonArrivals(rate)
    if scenario.arrival == "bursty":
        base = scenario.rate_rps or 0.5 * capacity_rps
        burst = scenario.burst_rps or 1.4 * capacity_rps
        return BurstyArrivals(base, burst, scenario.base_s, scenario.burst_s)
    if scenario.arrival == "trace":
        return TraceArrivals(scenario.trace_times)
    raise ValueError("unknown arrival process %r" % scenario.arrival)


def run_scenario(scenario: ClusterScenario, fault_injector=None,
                 registry: MetricsRegistry = None) -> ClusterReport:
    """Simulate one scenario and report its telemetry.

    `fault_injector` (a :class:`repro.cluster.chaos.FleetFaultInjector`)
    layers scheduled node failures and channel wedges onto the run; the
    resulting MTTR/availability/goodput accounting lands in
    :attr:`ClusterReport.chaos`.

    `registry` (optional) receives the run's raw instruments — callers
    that need bucket-level histograms (the tier crosscheck) pass one in;
    the report itself only carries summaries.

    ``scenario.tier == "vector"`` dispatches to the batched-epoch fleet
    tier (:func:`repro.cluster.vector.run_vector_scenario`); chaos there
    takes fault *windows*, not an injector.

    ``scenario.workload == "replication"`` dispatches to the replicated-
    storage runner (:func:`repro.replication.scenario.run_replication`),
    which drives multi-hop request DAGs through the same fleet/kernel and
    returns a :class:`repro.replication.scenario.ReplicationReport`.
    """
    if scenario.workload == "replication":
        from repro.replication.scenario import run_replication

        return run_replication(scenario, fault_injector=fault_injector)
    if scenario.workload != "rpc":
        raise ValueError("workload must be 'rpc' or 'replication'")
    if scenario.tier == "vector":
        if fault_injector is not None:
            raise ValueError(
                "the vector tier takes fault windows, not an injector: call "
                "run_vector_scenario(scenario, fault_windows=...) directly")
        if scenario.tenants:
            raise ValueError(
                "the vector tier has no per-tenant arbitration yet: "
                "run multi-tenant scenarios on tier='event'")
        from repro.cluster.vector import run_vector_scenario

        return run_vector_scenario(scenario, registry=registry)
    if scenario.tier != "event":
        raise ValueError("tier must be 'event' or 'vector'")
    if min(scenario.servers, scenario.channels, scenario.threads) < 1:
        raise ValueError("servers, channels, and threads must all be >= 1")
    if scenario.warmup_s >= scenario.duration_s:
        raise ValueError("warmup must be shorter than the run")
    sim = Simulator(scenario.seed)
    profile = scenario.build_profile()
    registry = registry if registry is not None else MetricsRegistry()
    recorder = TraceRecorder() if scenario.trace_path else None
    kwargs = (
        {"spill_factor": scenario.spill_factor}
        if scenario.scheduler == AdaptiveSpillScheduler.name
        else {}
    )
    policy = make_scheduler(scenario.scheduler, rng=sim.fork_rng("sched"), **kwargs)
    overload_policy = scenario.build_overload()
    qos_policy = scenario.build_qos()
    fleet = Fleet(
        sim, profile, policy,
        servers=scenario.servers, channels=scenario.channels,
        registry=registry, trace=recorder, overload=overload_policy,
        qos=qos_policy,
    )
    if fault_injector is not None:
        fault_injector.attach(sim, fleet)
    mix = scenario.resolved_mix()
    capacity = profile.model_metrics.rps * scenario.servers
    if qos_policy is not None:
        # One load generator per tenant, each with its own RNG stream
        # ("loadgen.<name>") and a disjoint request-id block (the static
        # scheduler hashes ids).  Rates resolve against the tenant's
        # weight-proportional share of fleet capacity unless absolute.
        loads = []
        for index, name in enumerate(qos_policy.order):
            spec = qos_policy.specs[name]
            id_start = (index + 1) << 24
            if spec.connections > 0:
                loads.append(ClosedLoopLoad(
                    sim, fleet, mix, spec.connections,
                    think_s=scenario.think_s, tenant=name, klass=spec.klass,
                    id_start=id_start))
            else:
                rate = spec.rate_rps if spec.rate_rps is not None else \
                    spec.load_factor * qos_policy.fair_share(name) * capacity
                loads.append(OpenLoopLoad(
                    sim, fleet, mix, PoissonArrivals(rate),
                    tenant=name, klass=spec.klass, id_start=id_start))
    elif scenario.mode == "closed":
        loads = [ClosedLoopLoad(
            sim, fleet, mix, scenario.connections, think_s=scenario.think_s)]
    elif scenario.mode == "open":
        loads = [OpenLoopLoad(sim, fleet, mix,
                              _build_arrivals(scenario, capacity))]
    else:
        raise ValueError("mode must be 'closed' or 'open'")

    fleet.measuring = scenario.warmup_s <= 0.0
    if scenario.warmup_s > 0.0:
        sim.schedule(scenario.warmup_s, lambda _: fleet.begin_measurement())
    for load in loads:
        load.start()
    sim.run(until=scenario.duration_s)

    window = scenario.duration_s - scenario.warmup_s
    timelines = [
        [
            registry.timeline("server%d.ch%d.util" % (s, c)).window_averages(
                scenario.warmup_s, scenario.duration_s, scenario.timeline_windows)
            for c in range(scenario.channels)
        ]
        for s in range(scenario.servers)
    ]
    scenario_dict = {
        "servers": scenario.servers,
        "channels": scenario.channels,
        "threads": scenario.threads,
        "ulp": scenario.ulp,
        "placement": profile.placement.value,
        "mode": scenario.mode,
        "arrival": scenario.arrival,
        "connections": scenario.connections,
        "think_s": scenario.think_s,
        "scheduler": scenario.scheduler,
        "duration_s": scenario.duration_s,
        "warmup_s": scenario.warmup_s,
        "seed": scenario.seed,
        "tier": "event",
    }
    if qos_policy is not None:
        scenario_dict["qos_mode"] = qos_policy.mode
        scenario_dict["tenants"] = list(qos_policy.order)
    report = ClusterReport(
        scenario=scenario_dict,
        rps=fleet.completed.value / window,
        completed=fleet.completed.value,
        submitted=fleet.submitted.value,
        spilled=fleet.spilled.value,
        dsa_served=fleet.dsa_served.value,
        bytes_out=fleet.bytes_out.value,
        latency=fleet.latency.summary(),
        wait_cpu=fleet.wait_cpu.summary(),
        wait_dsa=fleet.wait_dsa.summary(),
        channel_utilisation=fleet.channel_utilisations(scenario.warmup_s),
        cpu_utilisation=fleet.cpu_utilisations(scenario.warmup_s),
        channel_util_timeline=timelines,
        model_rps_per_server=profile.model_metrics.rps,
        model_bottleneck=profile.model_metrics.bottleneck,
        events_processed=sim.events_processed,
        chaos=(
            fault_injector.report(
                scenario.warmup_s, scenario.duration_s,
                scenario.servers, scenario.channels)
            if fault_injector is not None else None
        ),
        overload=(
            fleet.overload_report(window)
            if overload_policy is not None else None
        ),
        qos=(
            fleet.qos_report(window)
            if qos_policy is not None else None
        ),
    )
    if recorder is not None:
        recorder.write(scenario.trace_path)
    return report
