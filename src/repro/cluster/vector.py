"""The vector fleet tier: batched-epoch, struct-of-arrays simulation.

``run_vector_scenario`` simulates the *same* :class:`ClusterScenario` the
event tier runs, but advances time in fixed epochs: every request arriving
within an epoch is a columnar cohort, and each FIFO station (CPU pool,
memory bus, per-channel DSA, NIC) advances its cohort with one max-plus
scan (:mod:`repro.cluster.epoch`) instead of ~16 heap events per request.
Pricing (:class:`ServiceProfile` / :class:`RouteCosts`), placement policy
names, the Observation-2 :func:`spill_decision`, and the overload tier's
deadline/shed semantics are all *shared* with the event tier — the two
tiers disagree only where batching genuinely loses information.

Fidelity contract (crosschecked by :func:`crosscheck_tiers`):

* **exact** — open-loop arrivals (draw-for-draw the event tier's RNG
  stream via :class:`OpenArrivalBatcher`), static placement, single-class
  mixes, FIFO waits, deadline shedding, measurement-window accounting,
  busy-time integrals;
* **bounded delta** — least-loaded / adaptive-spill placement (the
  per-request backlog race becomes a per-epoch water-fill plus the shared
  marginal-cost spill rule), multi-class service interleaving (capacity-c
  chain decomposition), closed-loop arrival draws (same distributions,
  independent stream);
* **unsupported** (raises ``ValueError``) — CoDel admission, bounded
  queues, brownout, Chrome-trace emission: behaviours defined by
  event-granular feedback that an epoch tier cannot honestly batch.

Scale: connection state is a handful of parallel columns, so a
10^6-connection, 100-server sweep is ~10 MB of arrays and completes in
seconds (see ``benchmarks/perf/cluster_bench.py``).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import replace

from repro.cluster.chaos import epoch_fault_state, reroute_down
from repro.cluster.epoch import (
    Station,
    interleave_targets,
    make_ops,
    overlap_sum,
    resolve_backend,
    water_fill,
    window_overlaps,
)
from repro.cluster.fleet import DSA_PLACEMENTS, ServiceProfile
from repro.cluster.kernel import Simulator
from repro.cluster.loadgen import OpenArrivalBatcher
from repro.cluster.metrics import MetricsRegistry
from repro.overload.policy import OverloadConfig, OverloadPolicy

try:  # optional acceleration; the 'python' backend never touches numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the forced fallback
    _np = None

#: Closed-loop connection stagger, matching ClosedLoopLoad's default.
STAGGER_S = 1e-4


def _unsupported(scenario) -> None:
    """Reject scenario knobs whose semantics need event-granular feedback."""
    if scenario.trace_path:
        raise ValueError("vector tier cannot emit Chrome traces; use tier='event'")
    if scenario.admission != "none":
        raise ValueError("vector tier does not model CoDel admission; "
                         "use tier='event'")
    if scenario.dsa_queue_limit is not None or scenario.cpu_queue_limit is not None:
        raise ValueError("vector tier does not model bounded queues; "
                         "use tier='event'")
    if scenario.brownout_factor != 1.0:
        raise ValueError("vector tier does not model brownout; use tier='event'")
    if scenario.mode not in ("closed", "open"):
        raise ValueError("mode must be 'closed' or 'open'")
    if min(scenario.servers, scenario.channels, scenario.threads) < 1:
        raise ValueError("servers, channels, and threads must all be >= 1")
    if scenario.warmup_s >= scenario.duration_s:
        raise ValueError("warmup must be shorter than the run")


class _RouteTable:
    """Route costs as columns indexed by mix-entry id (one row per class).

    Index ``[0]`` is the normal (offload) route, ``[1]`` the CPU-onload
    spill route, both priced by the *same* :class:`ServiceProfile` the
    event tier uses.
    """

    def __init__(self, profile: ServiceProfile, mix, ops):
        def column(attr, spill, kind="f"):
            return ops.asarray(
                [getattr(profile.route(e.size, e.kind, spill=spill), attr)
                 for e in mix.entries], kind)

        self.cpu = (column("cpu_seconds", False), column("cpu_seconds", True))
        self.mem = (column("mem_seconds", False), column("mem_seconds", True))
        self.link = (column("link_seconds", False), column("link_seconds", True))
        self.bytes = (column("output_bytes", False, "i"),
                      column("output_bytes", True, "i"))
        self.dsa = column("dsa_seconds", False)  # spill route never queues DSA
        # Stacked [offload-rows | spill-rows] twins: one gather with index
        # ``entry + nclasses * spill`` replaces a where() + two takes per
        # column in the hot cohort path.
        self.nclasses = len(mix.entries)
        self.cpu2 = ops.concat([self.cpu[0], self.cpu[1]])
        self.mem2 = ops.concat([self.mem[0], self.mem[1]])
        self.link2 = ops.concat([self.link[0], self.link[1]])
        self.bytes2 = ops.concat([self.bytes[0], self.bytes[1]])
        self.dsa2 = ops.concat([self.dsa, ops.full(self.nclasses, 0.0)])
        total = sum(e.weight for e in mix.entries)
        weights = [e.weight / total for e in mix.entries]

        def mean(col):
            return sum(w * v for w, v in zip(weights, ops.tolist(col)))

        self.mean_cpu_off = mean(self.cpu[0])
        self.mean_cpu_on = mean(self.cpu[1])
        self.mean_dsa = mean(self.dsa)


class _Backlog:
    """Outstanding station work, summed at epoch starts.

    The vector tier's stand-in for the event tier's per-request
    ``backlog_seconds`` counters: a job contributes its service time from
    submission until its station departure, so sampling at an epoch start
    sees exactly what the event tier's scheduler would.

    ``at`` is only ever queried at epoch boundaries, and monotonically —
    so costs are bucketed at ``add`` time against the runner's boundary
    grid (a job lands in the first boundary at or after its departure)
    and a query is an amortized-O(1) cursor advance over expired buckets.
    The grid holds the *same float objects* the runner queries with, so
    "departed by boundary t" matches the exact comparison ``depart <= t``
    a per-job heap would make: for a boundary t, ``depart <= t`` iff the
    first boundary >= depart is itself <= t."""

    __slots__ = ("ops", "_grid", "_bins", "_cursor", "_total")

    def __init__(self, ops):
        self.ops = ops
        self._grid = []  # ascending epoch boundaries (set before first add)
        self._bins = []  # cost landing in each boundary (+1 overflow slot)
        self._cursor = 0
        self._total = 0.0

    def set_grid(self, grid) -> None:
        """Install the run's epoch-boundary times (ascending floats)."""
        if self.ops.name == "numpy":
            self._grid = _np.asarray(grid, dtype=_np.float64)
            self._bins = _np.zeros(len(grid) + 1)
        else:
            self._grid = list(grid)
            self._bins = [0.0] * (len(grid) + 1)
        self._cursor = 0
        self._total = 0.0

    def add(self, departs, costs) -> None:
        n = len(departs)
        if n == 0:
            return
        if self.ops.name == "numpy":
            index = _np.searchsorted(self._grid, departs, side="left")
            self._bins += _np.bincount(index, weights=costs,
                                       minlength=len(self._bins))
            self._total += float(_np.sum(costs))
        else:
            bins = self._bins
            total = 0.0
            grid = self._grid
            for depart, cost in zip(departs, costs):
                bins[bisect.bisect_left(grid, depart)] += cost
                total += cost
            self._total += total

    def at(self, t: float) -> float:
        """Backlog seconds still outstanding at time `t` (prunes the past)."""
        grid, bins = self._grid, self._bins
        cursor, total = self._cursor, self._total
        while cursor < len(grid) and grid[cursor] <= t:
            total -= float(bins[cursor])
            cursor += 1
        self._cursor, self._total = cursor, total
        return total


class _VectorServer:
    """One server's stations, backlog trackers, and busy-interval logs.

    Busy intervals are appended per cohort and integrated *once* at report
    time (:func:`_station_busy`) — a (start, depart) pair is immutable the
    moment the station scan produces it, so deferring the overlap integrals
    removes thousands of tiny per-epoch reductions from the hot loop."""

    def __init__(self, threads: int, channels: int, windows: int, backend, ops):
        self.cpu = Station(threads, backend)
        self.membus = Station(1, backend)
        self.link = Station(1, backend)
        self.dsa = [Station(1, backend) for _ in range(channels)]
        self.cpu_backlog = _Backlog(ops)
        self.chan_backlog = [_Backlog(ops) for _ in range(channels)]
        self.cpu_intervals = []  # (start, depart) column pairs
        self.chan_intervals = [[] for _ in range(channels)]


class _VectorFleet:
    """Counters, histograms, and the per-wave cohort pipeline."""

    def __init__(self, scenario, profile: ServiceProfile, mix, ops, backend,
                 registry: MetricsRegistry):
        self.ops = ops
        self.profile = profile
        self.mix = mix
        self.table = _RouteTable(profile, mix, ops)
        self.nservers = scenario.servers
        self.nchannels = scenario.channels
        self.threads = scenario.threads
        self.scheduler = scenario.scheduler
        self.spill_factor = scenario.spill_factor
        self.warmup = scenario.warmup_s
        self.duration = scenario.duration_s
        self.windows = scenario.timeline_windows
        self.deadline_s = scenario.deadline_s
        self.shed_on = scenario.deadline_s is not None and scenario.shed_expired
        self.can_spill = (profile.can_spill
                          and profile.placement in DSA_PLACEMENTS
                          and self.scheduler == "adaptive-spill")
        self.servers = [
            _VectorServer(scenario.threads, scenario.channels, self.windows,
                          backend, ops)
            for _ in range(scenario.servers)
        ]
        self.registry = registry
        self.latency = registry.histogram("latency_s")
        self.spill_latency = registry.histogram("latency_spilled_s")
        self.wait_cpu = registry.histogram("wait_cpu_s")
        self.wait_dsa = registry.histogram("wait_dsa_s")
        # Histogram samples are batched per run: cohorts append raw sample
        # columns here and :meth:`flush_samples` bulk-ingests each series
        # once, instead of paying record_many's fixed cost every cohort.
        self._samples = {name: [] for name in
                         ("latency", "spill_latency", "wait_cpu", "wait_dsa")}
        self.completed = registry.counter("completed")
        self.submitted = registry.counter("submitted")
        self.spilled = registry.counter("spilled")
        self.dsa_served = registry.counter("dsa_served")
        self.bytes_out = registry.counter("bytes_out")
        self.events = 0
        if self.deadline_s is not None:
            self.deadline_met = registry.counter("deadline_met")
            self.deadline_missed = registry.counter("deadline_missed")
            self.shed = {
                station: registry.counter("shed_" + station)
                for station in ("cpu", "dsa", "link")
            }

    # -- helpers ---------------------------------------------------------------------

    def set_epoch_grid(self, grid) -> None:
        """Give every backlog tracker the run's epoch-boundary times."""
        for server in self.servers:
            server.cpu_backlog.set_grid(grid)
            for backlog in server.chan_backlog:
                backlog.set_grid(grid)

    def _in_window(self, times):
        ops = self.ops
        return ops.and_(ops.ge(times, self.warmup), ops.le(times, self.duration))

    def _place_servers(self, t0: float, n: int, keys, down):
        """The server column for a cohort (and the channel column, static)."""
        ops = self.ops
        total = self.nservers * self.nchannels
        if self.scheduler == "static":
            # Exactly StaticScheduler.assign: hash the connection (closed
            # loop) or request id (open loop) to a fixed (server, channel).
            if ops.name == "numpy":
                slot = keys % total
                server_col = slot // self.nchannels
                channel_col = slot % self.nchannels
            else:
                slot = [k % total for k in keys]
                server_col = [s // self.nchannels for s in slot]
                channel_col = [s % self.nchannels for s in slot]
            if down:
                remap = ops.asarray(
                    [reroute_down(s, down, self.nservers)
                     for s in range(self.nservers)], "i")
                server_col = ops.take(remap, server_col)
            return server_col, channel_col
        # least-loaded / adaptive-spill: cohort water-fill over the same
        # backlog-seconds signal the per-request schedulers race on.
        backlogs = []
        for index, server in enumerate(self.servers):
            if index in down:
                backlogs.append(math.inf)
                continue
            backlogs.append(server.cpu_backlog.at(t0)
                            + sum(b.at(t0) for b in server.chan_backlog))
        per_job = self.table.mean_cpu_off + self.table.mean_dsa
        counts = water_fill(backlogs, n, per_job)
        return interleave_targets(counts, ops), None

    def _spill_plan(self, server: _VectorServer, t0: float, horizon: float,
                    entries):
        """Which of a server's cohort the Observation-2 rule spills, as a
        boolean mask in cohort order.

        The event tier's rule is per *request*: job j spills iff the
        DSA-vs-CPU wait gap exceeds ``spill_factor * delta_j`` where
        ``delta_j = cpu(onload_j) - cpu(offload_j)`` is that job's own
        onload premium (:func:`repro.cluster.sched.spill_decision`).  With
        a heterogeneous mix the rule is therefore *selective* — cheap-to-
        onload classes spill long before expensive ones — so a single
        mean-delta threshold over-spills by integer factors under burst.

        The cohort plan reproduces the selectivity: sort jobs by their own
        delta (cheapest first) and find the equilibrium prefix.  Spilling
        the k cheapest jobs removes their DSA work from the accelerator
        queues and adds their deltas to the worker pool; prefix sums give
        the projected end-of-epoch waits as a function of k, with the
        `horizon` of drain each side earns floored at zero (an idle CPU
        stops draining, a backed-up DSA doesn't — the floors are why the
        drain terms don't cancel).  Job k spills iff the projected gap
        still exceeds its own ``spill_factor * delta_k``; the first job
        that declines ends the prefix, exactly as the per-request rule
        stops firing once the gap closes."""
        ops = self.ops
        table = self.table
        m = len(entries)
        cpu_b = server.cpu_backlog.at(t0)
        dsa_b = sum(b.at(t0) for b in server.chan_backlog)
        off = ops.take(table.cpu[0], entries)
        on = ops.take(table.cpu[1], entries)
        dsa = ops.take(table.dsa, entries)
        delta = ops.maximum(ops.sub(on, off), 0.0)
        # Jobs whose offload route never queues the DSA can't spill; an
        # infinite delta parks them at the end of the sort and the gap
        # test can never pick them.
        delta = ops.where(ops.gt(dsa, 0.0), delta, math.inf)
        order = ops.argsort(delta)
        d_sorted = ops.take(delta, order)
        dsa_sorted = ops.take(dsa, order)
        removed = ops.sub(ops.cumsum(dsa_sorted), dsa_sorted)  # exclusive
        added = ops.sub(ops.cumsum(d_sorted), d_sorted)
        base_dsa = dsa_b + ops.total(dsa)
        base_cpu = cpu_b + ops.total(off)
        dsa_wait = ops.maximum(
            ops.sub(ops.mul(ops.sub(base_dsa, removed), 1.0 / self.nchannels),
                    horizon), 0.0)
        cpu_wait = ops.mul(
            ops.maximum(ops.sub(ops.add(base_cpu, added),
                                horizon * self.threads), 0.0),
            1.0 / self.threads)
        fire = ops.gt(dsa_wait,
                      ops.add(cpu_wait, ops.mul(d_sorted, self.spill_factor)))
        declined = ops.nonzero(ops.not_(fire))
        picks = int(declined[0]) if len(declined) else m
        spill = ops.full(m, False, "b")
        if picks:
            chosen = ops.take(order, ops.arange(picks))
            ops.put(spill, chosen, ops.full(picks, True, "b"))
        return spill

    # -- the cohort pipeline -----------------------------------------------------

    def serve_wave(self, t0: float, t1: float, arrive, entries, keys,
                   down, wedged):
        """Run one arrival cohort through the rack; returns per-job finish
        times (completion, or the instant the job was shed).  ``t1`` is the
        epoch's end — the drain horizon the spill planner projects over."""
        ops = self.ops
        n = len(arrive)
        finish = ops.full(n, math.inf)
        server_col, channel_col = self._place_servers(t0, n, keys, down)
        # Group by server with one stable sort; within a group the cohort
        # stays in arrival order (= station grant order).
        if ops.name == "numpy":
            counts = _np.bincount(server_col, minlength=self.nservers).tolist()
            order = _np.argsort(server_col, kind="stable")
        else:
            counts = [0] * self.nservers
            for s in server_col:
                counts[s] += 1
            order = sorted(range(n), key=server_col.__getitem__)
        offset = 0
        for index in range(self.nservers):
            m = counts[index]
            if m == 0:
                continue
            cohort = order[offset:offset + m]
            offset += m
            done = self._serve_cohort(
                index, t0, t1,
                ops.take(arrive, cohort),
                ops.take(entries, cohort),
                None if channel_col is None else ops.take(channel_col, cohort),
                wedged)
            ops.put(finish, cohort, done)
        return finish

    def _serve_cohort(self, index: int, t0: float, t1: float, arrive,
                      entries, channel_col, wedged):
        """One server's four-station pipeline over its cohort slice."""
        ops = self.ops
        server = self.servers[index]
        table = self.table
        m = len(arrive)
        # -- routes + spill split
        spill = ops.full(m, False, "b")
        if self.can_spill and table.mean_dsa > 0.0:
            spill = self._spill_plan(server, t0, t1 - t0, entries)
        row = ops.add(entries, ops.where(spill, table.nclasses, 0))
        cpu_s = ops.take(table.cpu2, row)
        mem_s = ops.take(table.mem2, row)
        link_s = ops.take(table.link2, row)
        out_b = ops.take(table.bytes2, row)
        dsa_s = ops.take(table.dsa2, row)
        deadline = None
        if self.deadline_s is not None:
            deadline = ops.add(arrive, self.deadline_s)
        shed_deadline = deadline if self.shed_on else None
        measured = self._in_window(arrive)
        self.submitted.inc(ops.count(measured))
        self.spilled.inc(ops.count(ops.and_(spill, measured)))
        # -- CPU pool
        start_cpu, dep_cpu, shed_cpu = server.cpu.drain(
            arrive, cpu_s, shed_deadline)
        self.events += m
        server.cpu_intervals.append((start_cpu, dep_cpu))
        server.cpu_backlog.add(dep_cpu, cpu_s)
        finish = ops.add(dep_cpu, 0.0)
        if shed_cpu is not None:
            self.shed["cpu"].inc(ops.count(ops.and_(
                shed_cpu, self._in_window(start_cpu))))
            alive = ops.nonzero(ops.not_(shed_cpu))
        else:
            alive = ops.arange(m)
        # -- memory bus (grant order = CPU departure order)
        dep_alive = ops.take(dep_cpu, alive)
        pos = ops.take(alive, ops.argsort(dep_alive))
        _, dep_mem, _ = server.membus.drain(
            ops.take(dep_cpu, pos), ops.take(mem_s, pos), None)
        self.events += len(pos)
        ops.put(finish, pos, dep_mem)
        # -- DSA channels (dep_mem is already non-decreasing: grant order)
        routed = ops.gt(ops.take(dsa_s, pos), 0.0)
        dsa_pick = ops.nonzero(routed)
        dsa_wait = ops.full(m, 0.0)
        link_pos = [ops.take(pos, ops.nonzero(ops.not_(routed)))]
        link_arrive = [ops.take(dep_mem, ops.nonzero(ops.not_(routed)))]
        if len(dsa_pick) > 0:
            dsa_pos = ops.take(pos, dsa_pick)
            dsa_arrive = ops.take(dep_mem, dsa_pick)
            if channel_col is not None:
                assigned = ops.take(channel_col, dsa_pos)
            else:
                chan_counts = water_fill(
                    [b.at(t0) for b in server.chan_backlog],
                    len(dsa_pick), table.mean_dsa)
                assigned = interleave_targets(chan_counts, ops)
            # Group by channel with one stable sort instead of an
            # equality scan per channel.
            if ops.name == "numpy":
                assigned_col = _np.asarray(assigned, dtype=_np.int64)
                chan_order = _np.argsort(assigned_col, kind="stable")
                chan_counts_all = _np.bincount(
                    assigned_col, minlength=self.nchannels).tolist()
            else:
                chan_order = sorted(range(len(assigned)),
                                    key=assigned.__getitem__)
                chan_counts_all = [0] * self.nchannels
                for a in assigned:
                    chan_counts_all[a] += 1
            chan_offset = 0
            for chan in range(self.nchannels):
                span = chan_counts_all[chan]
                if span == 0:
                    continue
                sel = chan_order[chan_offset:chan_offset + span]
                chan_offset += span
                c_pos = ops.take(dsa_pos, sel)
                c_arrive = ops.take(dsa_arrive, sel)
                service = ops.take(dsa_s, c_pos)
                factor = wedged.get((index, chan), 1.0)
                if factor != 1.0:
                    service = ops.mul(service, factor)
                c_deadline = (None if shed_deadline is None
                              else ops.take(shed_deadline, c_pos))
                start_d, dep_d, shed_d = server.dsa[chan].drain(
                    c_arrive, service, c_deadline)
                self.events += len(sel)
                ops.put(dsa_wait, c_pos, ops.sub(start_d, c_arrive))
                ops.put(finish, c_pos, dep_d)
                server.chan_intervals[chan].append((start_d, dep_d))
                server.chan_backlog[chan].add(dep_d, service)
                if shed_d is not None:
                    self.shed["dsa"].inc(ops.count(ops.and_(
                        shed_d, self._in_window(start_d))))
                    ok = ops.nonzero(ops.not_(shed_d))
                else:
                    ok = ops.arange(len(sel))
                dep_ok = ops.take(dep_d, ok)
                self.dsa_served.inc(ops.count(self._in_window(dep_ok)))
                link_pos.append(ops.take(c_pos, ok))
                link_arrive.append(dep_ok)
        # -- link / NIC (merge direct + per-channel survivors by time)
        l_pos = ops.concat(link_pos)
        l_arrive = ops.concat(link_arrive)
        merge = ops.argsort(l_arrive)
        l_pos = ops.take(l_pos, merge)
        l_arrive = ops.take(l_arrive, merge)
        l_deadline = (None if shed_deadline is None
                      else ops.take(shed_deadline, l_pos))
        start_l, dep_l, shed_l = server.link.drain(
            l_arrive, ops.take(link_s, l_pos), l_deadline)
        self.events += len(l_pos)
        ops.put(finish, l_pos, dep_l)
        if shed_l is not None:
            self.shed["link"].inc(ops.count(ops.and_(
                shed_l, self._in_window(start_l))))
            served = ops.nonzero(ops.not_(shed_l))
        else:
            served = ops.arange(len(l_pos))
        # -- completion accounting, identical window semantics to Fleet
        dep_served = ops.take(dep_l, served)
        done = ops.nonzero(self._in_window(dep_served))
        comp_pos = ops.take(ops.take(l_pos, served), done)
        comp_t = ops.take(dep_served, done)
        if len(comp_pos) > 0:
            self.completed.inc(len(comp_pos))
            self.bytes_out.inc(int(ops.total(ops.take(out_b, comp_pos))))
            comp_arrive = ops.take(arrive, comp_pos)
            self._samples["latency"].append(ops.sub(comp_t, comp_arrive))
            self._samples["wait_cpu"].append(
                ops.sub(ops.take(start_cpu, comp_pos), comp_arrive))
            spilled = ops.nonzero(ops.take(spill, comp_pos))
            if len(spilled) > 0:
                self._samples["spill_latency"].append(ops.take(
                    ops.sub(comp_t, comp_arrive), spilled))
            with_dsa = ops.nonzero(ops.gt(ops.take(dsa_s, comp_pos), 0.0))
            if len(with_dsa) > 0:
                self._samples["wait_dsa"].append(
                    ops.take(ops.take(dsa_wait, comp_pos), with_dsa))
            if self.deadline_s is not None:
                met = ops.count(ops.le(comp_t, ops.take(deadline, comp_pos)))
                self.deadline_met.inc(met)
                self.deadline_missed.inc(len(comp_pos) - met)
        return finish

    def flush_samples(self) -> None:
        """Bulk-ingest every deferred histogram sample column (idempotent)."""
        ops = self.ops
        sinks = {"latency": self.latency, "spill_latency": self.spill_latency,
                 "wait_cpu": self.wait_cpu, "wait_dsa": self.wait_dsa}
        for name, parts in self._samples.items():
            if parts:
                sinks[name].record_many(ops.concat(parts))
                parts.clear()


def _station_busy(ops, pairs, warmup: float, duration: float,
                  windows: int = 0):
    """Busy seconds (and optional per-window split) for logged intervals."""
    if not pairs:
        return 0.0, [0.0] * windows
    start = ops.concat([p[0] for p in pairs])
    depart = ops.concat([p[1] for p in pairs])
    busy = overlap_sum(start, depart, warmup, duration, ops)
    if windows <= 0:
        return busy, []
    return busy, window_overlaps(start, depart, warmup, duration, windows, ops)


def _batch_open_arrivals(scenario, arrivals, mix, load_rng, duration: float):
    """Every open-loop arrival in (0, duration] as numpy columns.

    The "batch" arrival stream: the same stochastic process the event
    tier draws per request (Poisson, or modulated Poisson realised by
    thinning a peak-rate stream), generated a whole run at a time with
    bulk numpy draws.  NOT draw-for-draw identical to the event tier —
    crosschecks use the default "replay" stream; this one exists so
    headline perf runs aren't bottlenecked on a per-request pure-Python
    RNG loop.  Deterministic given the scenario seed.
    """
    from repro.cluster.loadgen import (BurstyArrivals, PoissonArrivals,
                                       TraceArrivals)

    rng = _np.random.default_rng(load_rng.getrandbits(64))
    if isinstance(arrivals, TraceArrivals):
        times = _np.asarray(
            [t for t in arrivals.times if t <= duration], dtype=_np.float64)
    else:
        if isinstance(arrivals, PoissonArrivals):
            peak = arrivals.rate_rps
        elif isinstance(arrivals, BurstyArrivals):
            peak = max(arrivals.base_rps, arrivals.burst_rps)
        else:
            raise ValueError(
                "arrival_stream='batch' supports poisson/bursty/trace "
                "arrivals, not %r" % type(arrivals).__name__)
        chunks = []
        now = 0.0
        size = max(1024, int(peak * duration * 0.6))
        while now <= duration:
            t = now + _np.cumsum(rng.exponential(1.0 / peak, size=size))
            chunks.append(t)
            now = float(t[-1])
        times = _np.concatenate(chunks)
        times = times[times <= duration]
        if isinstance(arrivals, BurstyArrivals):
            phase = times % (arrivals.base_s + arrivals.burst_s)
            rate = _np.where(phase < arrivals.base_s,
                             arrivals.base_rps, arrivals.burst_rps)
            times = times[rng.random(times.size) * peak < rate]
    entries = _np.asarray(mix.sample_indices_batch(rng.random(times.size)),
                          dtype=_np.int64)
    return times, entries


# -- the runner ---------------------------------------------------------------------


def run_vector_scenario(scenario, fault_windows=None,
                        registry: MetricsRegistry = None):
    """Simulate `scenario` on the vector tier; returns a ClusterReport.

    `fault_windows` takes :class:`repro.cluster.chaos.FaultWindow`-style
    entries (node_down / dsa_wedge), applied per epoch via
    :func:`epoch_fault_state`.  `registry` (optional) receives the raw
    histograms/counters — the crosscheck uses it to compare bucket-level
    distributions, not just summaries.
    """
    from repro.cluster.scenario import ClusterReport, _build_arrivals

    _unsupported(scenario)
    backend = resolve_backend(getattr(scenario, "vector_backend", "auto"))
    ops = make_ops(backend)
    profile = scenario.build_profile()
    mix = scenario.resolved_mix()
    registry = registry if registry is not None else MetricsRegistry()
    # RNG derivation mirrors run_scenario's fork order exactly: "sched" is
    # forked first (and discarded — vector policies are deterministic), so
    # the "loadgen" child sees the identical seed stream.
    seed_source = Simulator(scenario.seed)
    seed_source.fork_rng("sched")
    load_rng = seed_source.fork_rng("loadgen")
    fleet = _VectorFleet(scenario, profile, mix, ops, backend, registry)
    duration = scenario.duration_s
    epoch = getattr(scenario, "epoch_s", None) or duration / 50.0
    fault_windows = fault_windows or ()
    # Pre-walk the epoch grid with the loop's own arithmetic so backlog
    # bucketing compares against the exact floats `at` will be called with.
    grid = []
    t_walk = 0.0
    while t_walk < duration:
        t_walk = min(duration, t_walk + epoch)
        grid.append(t_walk)
    fleet.set_epoch_grid(grid)

    if scenario.mode == "open":
        capacity = profile.model_metrics.rps * scenario.servers
        stream = getattr(scenario, "arrival_stream", "replay")
        if stream not in ("replay", "batch"):
            raise ValueError("arrival_stream must be 'replay' or 'batch'")
        batcher = all_times = all_entries = None
        cursor = 0
        if stream == "batch":
            if ops.name != "numpy":
                raise ValueError(
                    "arrival_stream='batch' needs the numpy backend")
            all_times, all_entries = _batch_open_arrivals(
                scenario, _build_arrivals(scenario, capacity), mix,
                load_rng, duration)
        else:
            batcher = OpenArrivalBatcher(
                _build_arrivals(scenario, capacity), mix, load_rng)
        next_id = 0
        t0 = 0.0
        while t0 < duration:
            t1 = min(duration, t0 + epoch)
            down, wedged = epoch_fault_state(fault_windows, t0, t1)
            if batcher is not None:
                times, entry_ids = batcher.next_batch(t1)
                arrive = ops.asarray(times)
                entries = ops.asarray(entry_ids, "i")
            else:
                hi = int(_np.searchsorted(all_times, t1, side="right"))
                arrive = all_times[cursor:hi]
                entries = all_entries[cursor:hi]
                cursor = hi
            if len(arrive):
                keys = ops.add(ops.arange(len(arrive)), next_id)
                next_id += len(arrive)
                fleet.serve_wave(t0, t1, arrive, entries, keys, down, wedged)
            t0 = t1
    else:
        count = scenario.connections
        if count < 1:
            raise ValueError("need at least one connection")
        if ops.name == "numpy":
            next_arrival = STAGGER_S * _np.arange(count, dtype=_np.float64) / count
            draw = _np.random.default_rng(load_rng.getrandbits(64))
        else:
            next_arrival = [STAGGER_S * c / count for c in range(count)]
            draw = None
        single = len(mix.entries) == 1
        think = scenario.think_s
        t0 = 0.0
        while t0 < duration:
            t1 = min(duration, t0 + epoch)
            down, wedged = epoch_fault_state(fault_windows, t0, t1)
            while True:
                ready = ops.nonzero(ops.le(next_arrival, t1))
                if len(ready) == 0:
                    break
                times = ops.take(next_arrival, ready)
                order = ops.argsort(times)
                ready = ops.take(ready, order)
                times = ops.take(times, order)
                m = len(ready)
                if single:
                    entries = ops.full(m, 0, "i")
                elif draw is not None:
                    entries = ops.asarray(
                        mix.sample_indices_batch(draw.random(m)), "i")
                else:
                    entries = [mix.sample_index(load_rng) for _ in range(m)]
                finish = fleet.serve_wave(t0, t1, times, entries, ready,
                                          down, wedged)
                if think > 0.0:
                    if draw is not None:
                        finish = finish + draw.exponential(think, m)
                    else:
                        finish = [f + load_rng.expovariate(1.0 / think)
                                  for f in finish]
                ops.put(next_arrival, ready, finish)
            t0 = t1

    # -- report (field-for-field the event tier's shape)
    fleet.flush_samples()
    window = scenario.duration_s - scenario.warmup_s
    width = window / scenario.timeline_windows
    servers = fleet.servers
    chan_util, chan_timeline, cpu_util = [], [], []
    for server in servers:
        row_util, row_timeline = [], []
        for chan in range(scenario.channels):
            busy, per_window = _station_busy(
                ops, server.chan_intervals[chan], scenario.warmup_s,
                scenario.duration_s, scenario.timeline_windows)
            row_util.append(busy / window)
            row_timeline.append([b / width for b in per_window])
        chan_util.append(row_util)
        chan_timeline.append(row_timeline)
        cpu_busy, _ = _station_busy(ops, server.cpu_intervals,
                                    scenario.warmup_s, scenario.duration_s)
        cpu_util.append(cpu_busy / (window * scenario.threads))
    overload = None
    if scenario.deadline_s is not None:
        policy = OverloadPolicy(OverloadConfig(
            deadline_s=scenario.deadline_s,
            shed_expired=scenario.shed_expired))
        overload = policy.summary()
        overload.update({
            "goodput_rps": (fleet.deadline_met.value / window
                            if window > 0 else 0.0),
            "deadline_met": fleet.deadline_met.value,
            "deadline_missed": fleet.deadline_missed.value,
            "rejected_admission": 0,
            "rejected_backpressure": 0,
            "brownouts": 0,
            "shed": {name: counter.value
                     for name, counter in sorted(fleet.shed.items())},
        })
    return ClusterReport(
        scenario={
            "servers": scenario.servers,
            "channels": scenario.channels,
            "threads": scenario.threads,
            "ulp": scenario.ulp,
            "placement": profile.placement.value,
            "mode": scenario.mode,
            "arrival": scenario.arrival,
            "connections": scenario.connections,
            "think_s": scenario.think_s,
            "scheduler": scenario.scheduler,
            "duration_s": scenario.duration_s,
            "warmup_s": scenario.warmup_s,
            "seed": scenario.seed,
            "tier": "vector",
            "epoch_s": epoch,
            "backend": backend,
        },
        rps=fleet.completed.value / window,
        completed=fleet.completed.value,
        submitted=fleet.submitted.value,
        spilled=fleet.spilled.value,
        dsa_served=fleet.dsa_served.value,
        bytes_out=fleet.bytes_out.value,
        latency=fleet.latency.summary(),
        wait_cpu=fleet.wait_cpu.summary(),
        wait_dsa=fleet.wait_dsa.summary(),
        channel_utilisation=chan_util,
        cpu_utilisation=cpu_util,
        channel_util_timeline=chan_timeline,
        model_rps_per_server=profile.model_metrics.rps,
        model_bottleneck=profile.model_metrics.bottleneck,
        events_processed=fleet.events,
        overload=overload,
    )


# -- crosscheck ---------------------------------------------------------------------


def crosscheck_tiers(scenario, count_rel_tol: float = 0.05,
                     count_abs_tol: float = 5.0,
                     bucket_frac_tol: float = 0.15) -> dict:
    """Run `scenario` on both tiers and compare their telemetry.

    Counters (submitted / completed / spilled / dsa_served, plus total
    shed when deadlines are on) must agree within
    ``count_abs_tol + count_rel_tol * max``; the latency histograms must
    agree bucket-for-bucket within an L1 distance of ``bucket_frac_tol``
    of the event tier's sample count.  Returns a JSON-ready verdict dict
    with per-metric deltas; ``result["passed"]`` is the gate.
    """
    event_reg, vector_reg = MetricsRegistry(), MetricsRegistry()
    from repro.cluster.scenario import run_scenario

    event = run_scenario(replace(scenario, tier="event"), registry=event_reg)
    vector = run_vector_scenario(replace(scenario, tier="vector"),
                                 registry=vector_reg)
    counts = {}
    passed = True
    names = ["submitted", "completed", "spilled", "dsa_served"]
    for name in names:
        a, b = getattr(event, name), getattr(vector, name)
        tolerance = count_abs_tol + count_rel_tol * max(a, b)
        ok = abs(a - b) <= tolerance
        passed = passed and ok
        counts[name] = {"event": a, "vector": b, "delta": b - a,
                        "tolerance": tolerance, "passed": ok}
    if event.overload is not None and vector.overload is not None:
        a = sum(event.overload["shed"].values())
        b = sum(vector.overload["shed"].values())
        tolerance = count_abs_tol + count_rel_tol * max(a, b)
        ok = abs(a - b) <= tolerance
        passed = passed and ok
        counts["shed_total"] = {"event": a, "vector": b, "delta": b - a,
                                "tolerance": tolerance, "passed": ok}
    event_hist = event_reg.histograms["latency_s"]
    vector_hist = vector_reg.histograms["latency_s"]
    indices = set(event_hist.buckets) | set(vector_hist.buckets)
    l1 = sum(abs(event_hist.buckets.get(i, 0) - vector_hist.buckets.get(i, 0))
             for i in indices)
    frac = l1 / max(1, event_hist.count)
    bucket_ok = frac <= bucket_frac_tol
    passed = passed and bucket_ok
    return {
        "passed": passed,
        "counts": counts,
        "latency_bucket_l1": l1,
        "latency_bucket_l1_frac": frac,
        "latency_bucket_tol": bucket_frac_tol,
        "latency_buckets_passed": bucket_ok,
        "event_rps": event.rps,
        "vector_rps": vector.rps,
        "event_events_processed": event.events_processed,
        "vector_events_processed": vector.events_processed,
    }
