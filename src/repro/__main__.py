"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — run the quickstart offloads and print device statistics.
* ``compare [sizes...]`` — the Figs. 11/12 placement comparison tables.
* ``report [-o FILE]`` — aggregate benchmarks/results into one document.
* ``power [utilisation]`` — the Sec. VII-D power/area estimate.
* ``cluster`` — rack-scale discrete-event simulation: RPS, p50/p99/p999
  tail latency, and per-channel DSA utilisation under a chosen scheduler.
* ``chaos`` — seed-driven fault injection across the whole stack (ALERT_N
  storms, wedged DSAs, DRAM flips, packet loss, lost completions, a node
  failure) with MTTR/availability/goodput accounting; byte-identical
  reports per seed.
* ``overload`` — goodput-vs-offered-load sweep (0.5x-3x capacity) with the
  overload-control stack (deadlines, CoDel admission, bounded queues,
  retry budgets) on vs off; byte-identical reports per seed, exits
  non-zero if goodput at 2x falls below 70% of peak.
* ``qos`` — multi-tenant noisy-neighbor sweep: an aggressor tenant at 3x
  its fair share (plus chaos) against well-behaved latency/standard
  tenants under DRR weighted-fair stations, strict-priority classes, and
  per-tenant overload isolation; byte-identical reports per seed, exits
  non-zero if any fairness gate fails (victim goodput, aggressor cap,
  surge p99, cross-tenant retry-budget exhaustion).
* ``profile`` — cProfile one warmed TLS offload through the
  micro-simulation (the instrument behind the batched fast path);
  ``--reference`` profiles the per-line path for comparison.
* ``replicate`` — replicated storage on the fleet: ABD quorum or chain
  replication with SmartDIMM-priced compress+encrypt hops, optional
  node_down/channel_wedge chaos, and a post-run consistency audit
  (exits non-zero on any violation); ``--sweep`` runs the placement
  comparison behind ``BENCH_replication.json``.
* ``ras`` — memory RAS + end-to-end integrity sweep: scrub-rate x
  SDC-rate grid (patrol scrub priced against goodput, CE->UE poison
  escalation, row retirement), per-lane DSA quarantine with probation
  re-admission, and fleet SDC storms; byte-identical reports per seed,
  exits non-zero if any integrity gate fails (undetected corruption,
  scrub overhead ceiling, quarantine liveness).

* ``matrix`` — the whole experiment matrix: every target's grid of
  (instance, seed) points fanned across a process pool (``--jobs N``)
  with a content-addressed result cache; reassembles each target's
  serial payload byte-identically, rolls up cross-target statistics,
  and evaluates every acceptance gate.

The sweep commands (``overload``, ``qos``, ``ras``) accept ``--check``:
re-run the sweep and require the payload to match the committed
``BENCH_*.json`` baseline byte-for-byte (missing or corrupt baselines
exit non-zero with a one-line error, no traceback).  ``matrix --check``
does the same for every target with a committed baseline in one run.
"""

from __future__ import annotations

import argparse
import sys


def write_json_report(path: str, payload: str, label: str) -> None:
    """Atomically write a report payload: tmp file + rename.

    Every ``--json-out`` goes through here so a crash (or a parallel
    matrix run racing a serial one) can never leave a torn half-written
    baseline on disk.
    """
    import os
    import tempfile

    target = os.path.abspath(path)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target),
                               prefix="." + os.path.basename(target) + ".")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    print("%s JSON written to %s" % (label, path))


def _load_baseline(path: str, name: str) -> dict:
    """Load a committed ``BENCH_*.json`` baseline or die with one line.

    Missing or corrupt baselines are operator errors, not bugs worth a
    traceback: raise :class:`SystemExit` with a single-line message so
    every subcommand fails the same way (non-zero, stderr, no stack).
    """
    import json

    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SystemExit(
            "error: no committed %s baseline at %s "
            "(generate one with --json-out %s)" % (name, path, path))
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise SystemExit(
            "error: committed %s baseline %s is unreadable: %s"
            % (name, path, exc))


def _check_baseline(fresh_payload: str, path: str, name: str) -> int:
    """Compare a fresh sweep payload against the committed baseline.

    Both sides are canonicalised through the same JSON encoding, so the
    comparison is exact: any drift (different seed, different mode, or a
    genuine behaviour change) fails with one line.
    """
    import json

    baseline = _load_baseline(path, name)
    canonical = json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    if canonical != fresh_payload:
        print("FAIL: fresh %s run differs from committed %s "
              "(was it generated with the same seed and mode?)"
              % (name, path))
        return 1
    print("baseline check passed: fresh run matches %s" % path)
    return 0


def _cmd_demo(_args) -> int:
    import zlib

    from repro import SmartDIMMSession
    from repro.ulp.ctx_cache import cached_aesgcm
    from repro.workloads.corpus import CorpusKind, generate_corpus

    session = SmartDIMMSession()
    key, nonce = bytes(range(16)), bytes(12)
    payload = generate_corpus(CorpusKind.TEXT, 6000)
    out = session.tls_encrypt(key, nonce, payload)
    ct, tag = cached_aesgcm(key).encrypt(nonce, payload)
    assert out == ct + tag
    print("TLS offload: %d bytes encrypted, bit-exact vs software" % len(payload))
    page = generate_corpus(CorpusKind.HTML, 4096)
    stream = session.deflate_page(page)
    assert zlib.decompress(stream, -15) == page
    print("deflate offload: 4096 -> %d bytes, zlib-verified" % len(stream))
    back = session.inflate_page(stream)
    assert back == page
    print("inflate offload: round trip complete")
    stats = session.device.stats
    print(
        "device: %d offloads, %d DSA lines, %d self-recycles, %d S10 serves, "
        "%d S7 drops, %d ALERT_N"
        % (
            stats.offloads_finalized,
            stats.dsa_lines_processed,
            stats.self_recycles,
            stats.scratchpad_serves,
            stats.ignored_writes,
            stats.alerts,
        )
    )
    return 0


def _cmd_compare(args) -> int:
    from repro.sim.server import Placement, ServerModel, Ulp, WorkloadSpec

    sizes = [int(s) for s in args.sizes] or [4096, 16384]
    for message_bytes in sizes:
        for ulp, placements in (
            (Ulp.TLS, [Placement.CPU, Placement.SMARTNIC, Placement.QUICKASSIST,
                       Placement.SMARTDIMM]),
            (Ulp.DEFLATE, [Placement.CPU, Placement.QUICKASSIST, Placement.SMARTDIMM]),
        ):
            base = ServerModel(
                WorkloadSpec(ulp=ulp, placement=Placement.CPU, message_bytes=message_bytes)
            ).solve()
            print(f"\n{ulp.value.upper()} {message_bytes}B "
                  f"(CPU: {base.rps:,.0f} req/s)")
            for placement in placements:
                metrics = ServerModel(
                    WorkloadSpec(ulp=ulp, placement=placement, message_bytes=message_bytes)
                ).solve()
                print(
                    f"  {placement.value:<12} rps={metrics.rps / base.rps:5.2f}x "
                    f"cpu={metrics.cycles_per_request / base.cycles_per_request:5.2f}x "
                    f"bw={metrics.membw_bytes_per_request / base.membw_bytes_per_request:5.2f}x"
                )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import build_report, coverage

    text = build_report()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        present, total = coverage()
        print("wrote %s (%d/%d sections)" % (args.output, present, total))
    else:
        print(text)
    return 0


def _cmd_power(args) -> int:
    from repro.analysis.power import PowerModel

    model = PowerModel()
    utilisation = args.utilisation
    report = model.report(utilisation)
    print("channel utilisation: %.0f%%" % (100 * utilisation))
    print("dynamic power: %.2f W (full activity: %.2f W)"
          % (report.dynamic_watts, model.full_activity_watts()))
    print("TLS DSA FPGA share: %.1f%%" % (100 * model.tls_utilisation_fraction()))
    for component, watts in sorted(report.breakdown.items(), key=lambda kv: -kv[1]):
        print("  %-18s %6.2f W" % (component, watts))
    return 0


def _cmd_cluster(args) -> int:
    import json

    from repro.cluster import ClusterScenario, crosscheck_tiers, run_scenario

    scenario = ClusterScenario(
        servers=args.servers,
        channels=args.channels,
        threads=args.threads,
        ulp=args.ulp,
        placement=args.placement,
        message_bytes=args.message_bytes,
        mode=args.mode,
        connections=args.connections,
        arrival=args.arrival,
        rate_rps=args.rate,
        scheduler=args.sched,
        dsa_bytes_per_sec=args.dsa_rate,
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
        trace_path=args.trace_out,
        tier=args.tier,
        epoch_s=args.epoch_s,
        vector_backend=args.vector_backend,
        arrival_stream=args.arrival_stream,
    )
    if args.crosscheck:
        verdict = crosscheck_tiers(scenario)
        print(json.dumps(verdict, indent=2, sort_keys=True))
        if not verdict["passed"]:
            print("FAIL: vector tier diverged from the event kernel")
            return 1
        print("crosscheck passed: tiers agree within tolerance")
        return 0
    report = run_scenario(scenario)
    print(report.table())
    if args.trace_out:
        print("chrome trace written to %s (open in about:tracing)" % args.trace_out)
    if args.json_out:
        write_json_report(args.json_out, report.to_json(), "metrics")
    return 0


def _cmd_chaos(args) -> int:
    import json

    from repro.faults.chaos import render_chaos, run_chaos

    report = run_chaos(seed=args.seed, ops=args.ops)
    print(render_chaos(report))
    payload = json.dumps(report, sort_keys=True)
    if args.json_out:
        write_json_report(args.json_out, payload, "chaos report")
    else:
        print(payload)
    corrupted = report["micro"]["corruption_observed"]
    if corrupted:
        print("FAIL: %d corrupted outputs escaped recovery" % corrupted)
        return 1
    return 0


def _cmd_overload(args) -> int:
    from repro.overload import sweep

    report = sweep.run_overload(seed=args.seed, quick=args.quick)
    print(sweep.render(report))
    if args.json_out:
        write_json_report(args.json_out, sweep.to_json(report),
                          "overload report")
    if args.check is not None:
        return _check_baseline(sweep.to_json(report), args.check, "overload")
    summary = report["sweep"]["summary"]
    ratio = summary["shed_2x_over_peak"] or 0.0
    if ratio < 0.70:
        print("FAIL: goodput at 2x offered load is %.0f%% of peak (< 70%%)"
              % (100.0 * ratio))
        return 1
    return 0


def _cmd_qos(args) -> int:
    from repro.qos import sweep

    report = sweep.run_qos(seed=args.seed, quick=args.quick)
    print(sweep.render(report))
    if args.json_out:
        write_json_report(args.json_out, sweep.to_json(report), "qos report")
    if args.check is not None:
        return _check_baseline(sweep.to_json(report), args.check, "qos")
    failures = sweep.gate_failures(report)
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    return 0


def _cmd_ras(args) -> int:
    from repro.ras import sweep

    report = sweep.run_ras(seed=args.seed, quick=args.quick)
    print(sweep.render(report))
    if args.json_out:
        write_json_report(args.json_out, sweep.to_json(report), "ras report")
    if args.check is not None:
        return _check_baseline(sweep.to_json(report), args.check, "ras")
    failures = sweep.gate_failures(report)
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    return 0


def _cmd_replicate(args) -> int:
    from repro.cluster.chaos import FleetFaultInjector
    from repro.replication import sweep
    from repro.replication.scenario import run_replication

    if args.sweep:
        report = sweep.run_replication_suite(seed=args.seed, quick=args.quick)
        print(sweep.render(report))
        if args.json_out:
            write_json_report(args.json_out, sweep.to_json(report),
                              "replication report")
        summary = report["summary"]
        if summary["total_violations"]:
            print("FAIL: %d consistency violations"
                  % summary["total_violations"])
            return 1
        ratio = summary["smartdimm_over_cpu_goodput_fault"] or 0.0
        if ratio <= 1.0:
            print("FAIL: smartdimm goodput under fault is %.2fx cpu (<= 1x)"
                  % ratio)
            return 1
        return 0
    scenario = sweep.replication_scenario(
        args.placement, args.protocol, args.seed,
        value_bytes=args.value_bytes,
        duration_s=args.duration, warmup_s=args.warmup)
    scenario.replicas = args.replicas
    scenario.servers = max(scenario.servers, args.replicas)
    injector = (
        FleetFaultInjector(sweep.standard_windows(args.duration, args.warmup))
        if args.chaos else None)
    report = run_replication(scenario, fault_injector=injector)
    print(report.table())
    if args.json_out:
        write_json_report(args.json_out, report.to_json(),
                          "replication report")
    violations = report.consistency["violation_count"]
    if violations:
        print("FAIL: %d consistency violations" % violations)
        return 1
    return 0


def _cmd_matrix(args) -> int:
    from repro.exp import ResultCache, build_matrix, matrix_to_json, run_matrix
    from repro.exp.matrix import render, target_payload_json
    from repro.exp.targets import TARGETS, target_names

    if args.list:
        for name in target_names():
            target = TARGETS[name]
            points = len(target.specs(quick=args.quick))
            print("%-12s %3d points  %s" % (name, points, target.description))
        return 0
    only = args.only or None
    if only:
        unknown = sorted(set(only) - set(TARGETS))
        if unknown:
            raise SystemExit(
                "error: unknown matrix target(s): %s (known: %s)"
                % (", ".join(unknown), ", ".join(target_names())))
    if args.check and args.quick:
        raise SystemExit(
            "error: --check compares full-mode baselines; drop --quick")
    if args.check and args.seed is not None:
        raise SystemExit(
            "error: --check requires each target's default seed; drop --seed")
    specs = build_matrix(only=only, quick=args.quick, seed=args.seed)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    result = run_matrix(specs, jobs=args.jobs, cache=cache,
                        force=args.force, progress=print)
    print(render(result))
    if args.json_out:
        write_json_report(args.json_out, matrix_to_json(result),
                          "matrix report")
    status = 0
    if args.check:
        for name in sorted(result.payload["targets"]):
            baseline = TARGETS[name].baseline
            if baseline is None:
                continue
            status |= _check_baseline(
                target_payload_json(result, name), baseline, name)
    if result.gate_failures:
        for failure in result.gate_failures:
            print("FAIL: %s" % failure)
        return 1
    return status


def _cmd_profile(args) -> int:
    from repro.profiling import run_profile

    print(
        run_profile(
            size=args.size,
            top=args.top,
            sort=args.sort,
            fast_path=not args.reference,
        )
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SmartDIMM reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run the quickstart offloads")
    compare = sub.add_parser("compare", help="placement comparison tables")
    compare.add_argument("sizes", nargs="*", help="message sizes in bytes")
    report = sub.add_parser("report", help="aggregate benchmark results")
    report.add_argument("-o", "--output", help="write to a file")
    power = sub.add_parser("power", help="power/area estimate")
    power.add_argument("utilisation", nargs="?", type=float, default=0.3)
    cluster = sub.add_parser(
        "cluster",
        help="rack-scale DES: tail latency + per-channel DSA utilisation",
    )
    cluster.add_argument("--servers", type=int, default=4)
    cluster.add_argument("--channels", type=int, default=6,
                         help="memory channels (DSA queues) per server")
    cluster.add_argument("--threads", type=int, default=10)
    cluster.add_argument("--connections", type=int, default=512)
    cluster.add_argument("--ulp", choices=["tls", "deflate", "none"],
                         default="tls")
    cluster.add_argument("--placement", default="smartdimm",
                         help="smartdimm | cpu | quickassist | smartnic | "
                              "smartdimm_direct")
    cluster.add_argument("--message-bytes", type=int, default=16384)
    cluster.add_argument("--mode", choices=["closed", "open"], default="closed")
    cluster.add_argument("--arrival", choices=["poisson", "bursty"],
                         default="poisson", help="open-loop arrival process")
    cluster.add_argument("--rate", type=float, default=None,
                         help="open-loop arrival rate in req/s")
    cluster.add_argument("--sched", default="adaptive-spill",
                         choices=["static", "least-loaded", "adaptive-spill"])
    cluster.add_argument("--dsa-rate", type=float, default=None,
                         help="per-channel DSA bytes/sec (default: channel bw)")
    cluster.add_argument("--duration", type=float, default=0.02,
                         help="simulated seconds (default 0.02)")
    cluster.add_argument("--warmup", type=float, default=0.005)
    cluster.add_argument("--seed", type=int, default=1)
    cluster.add_argument("--tier", choices=["event", "vector"],
                         default="event",
                         help="event = exact DES kernel; vector = "
                              "batched-epoch fleet tier (~20x faster at "
                              "fleet scale)")
    cluster.add_argument("--epoch-s", type=float, default=None,
                         help="vector-tier epoch length in seconds "
                              "(default: duration / 50)")
    cluster.add_argument("--vector-backend",
                         choices=["auto", "numpy", "python"], default="auto",
                         help="vector-tier array backend (default auto)")
    cluster.add_argument("--arrival-stream", choices=["replay", "batch"],
                         default="replay",
                         help="vector-tier open-loop arrivals: replay the "
                              "event tier's RNG draw-for-draw, or batch-"
                              "generate the same process with bulk numpy")
    cluster.add_argument("--crosscheck", action="store_true",
                         help="run BOTH tiers and verify they agree; "
                              "prints the verdict, exits 1 on divergence")
    cluster.add_argument("--trace-out", default=None,
                         help="write a Chrome-trace JSON here")
    cluster.add_argument("--json-out", default=None,
                         help="write the metrics report JSON here")
    chaos = sub.add_parser(
        "chaos",
        help="whole-stack fault injection with recovery accounting",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="drives every fault decision (default 7)")
    chaos.add_argument("--ops", type=int, default=24,
                       help="micro-phase offload operations (default 24)")
    chaos.add_argument("--json-out", default=None,
                       help="write the machine-readable report here "
                            "(default: print it after the summary)")
    overload = sub.add_parser(
        "overload",
        help="goodput-vs-offered-load sweep: overload control on vs off",
    )
    overload.add_argument("--seed", type=int, default=11,
                          help="drives arrivals and fault draws (default 11)")
    overload.add_argument("--quick", action="store_true",
                          help="reduced sweep (3 load factors, short window)")
    overload.add_argument("--json-out", default=None,
                          help="write the BENCH_overload.json payload here")
    overload.add_argument("--check", nargs="?", const="BENCH_overload.json",
                          default=None, metavar="BASELINE",
                          help="require the payload to match the committed "
                               "baseline byte-for-byte (default path "
                               "BENCH_overload.json)")
    qos = sub.add_parser(
        "qos",
        help="multi-tenant fairness sweep: noisy neighbor vs DRR isolation",
    )
    qos.add_argument("--seed", type=int, default=11,
                     help="drives arrivals and fault draws (default 11)")
    qos.add_argument("--quick", action="store_true",
                     help="short measurement window (smoke-test speed)")
    qos.add_argument("--json-out", default=None,
                     help="write the BENCH_qos.json payload here")
    qos.add_argument("--check", nargs="?", const="BENCH_qos.json",
                     default=None, metavar="BASELINE",
                     help="require the payload to match the committed "
                          "baseline byte-for-byte (default path "
                          "BENCH_qos.json)")
    ras = sub.add_parser(
        "ras",
        help="memory RAS + integrity sweep: scrub x SDC grid, quarantine",
    )
    ras.add_argument("--seed", type=int, default=11,
                     help="drives flip, SDC, and arrival draws (default 11)")
    ras.add_argument("--quick", action="store_true",
                     help="short grid and windows (smoke-test speed)")
    ras.add_argument("--json-out", default=None,
                     help="write the BENCH_ras.json payload here")
    ras.add_argument("--check", nargs="?", const="BENCH_ras.json",
                     default=None, metavar="BASELINE",
                     help="require the payload to match the committed "
                          "baseline byte-for-byte (default path "
                          "BENCH_ras.json)")
    replicate = sub.add_parser(
        "replicate",
        help="replicated storage on the fleet: ABD/chain with SmartDIMM hops",
    )
    replicate.add_argument("--protocol", choices=["abd", "chain"],
                           default="abd")
    replicate.add_argument("--replicas", type=int, default=3)
    replicate.add_argument("--placement",
                           choices=["smartdimm", "cpu", "quickassist"],
                           default="smartdimm",
                           help="where every hop's compress+encrypt runs")
    replicate.add_argument("--value-bytes", type=int, default=16384)
    replicate.add_argument("--chaos", action="store_true",
                           help="inject the standard node_down + "
                                "channel_wedge windows")
    replicate.add_argument("--sweep", action="store_true",
                           help="run the full placement x protocol sweep "
                                "(the BENCH_replication.json payload)")
    replicate.add_argument("--quick", action="store_true",
                           help="shorter sweep window")
    replicate.add_argument("--duration", type=float, default=0.03,
                           help="simulated seconds (default 0.03)")
    replicate.add_argument("--warmup", type=float, default=0.005)
    replicate.add_argument("--seed", type=int, default=7)
    replicate.add_argument("--json-out", default=None,
                           help="write the report JSON here")
    matrix = sub.add_parser(
        "matrix",
        help="run the whole experiment matrix: every target's point grid "
             "through a process pool with a content-addressed result cache",
    )
    matrix.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = serial, "
                             "byte-identical output either way)")
    matrix.add_argument("--quick", action="store_true",
                        help="reduced grids and short windows per target")
    matrix.add_argument("--only", action="append", metavar="TARGET",
                        help="restrict to this target (repeatable); "
                             "see --list")
    matrix.add_argument("--seed", type=int, default=None,
                        help="override every target's default seed")
    matrix.add_argument("--force", action="store_true",
                        help="ignore cached results and re-run every point "
                             "(the cache is refreshed)")
    matrix.add_argument("--cache-dir", default=".exp-cache",
                        help="result-cache directory (default .exp-cache)")
    matrix.add_argument("--no-cache", action="store_true",
                        help="run without reading or writing the cache")
    matrix.add_argument("--json-out", default=None,
                        help="write the full matrix payload JSON here")
    matrix.add_argument("--check", action="store_true",
                        help="require every target with a committed "
                             "BENCH_*.json baseline to match it "
                             "byte-for-byte")
    matrix.add_argument("--list", action="store_true",
                        help="list targets and point counts, then exit")
    profile = sub.add_parser(
        "profile",
        help="cProfile one TLS offload through the micro-simulation",
    )
    profile.add_argument("--size", type=int, default=65536,
                         help="record bytes (default 65536)")
    profile.add_argument("--top", type=int, default=25,
                         help="rows to print (default 25)")
    profile.add_argument("--sort", default="cumulative",
                         help="pstats sort key (default cumulative)")
    profile.add_argument("--reference", action="store_true",
                         help="profile the per-line reference path")
    args = parser.parse_args(argv)
    return {
        "demo": _cmd_demo,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "power": _cmd_power,
        "cluster": _cmd_cluster,
        "chaos": _cmd_chaos,
        "overload": _cmd_overload,
        "qos": _cmd_qos,
        "ras": _cmd_ras,
        "replicate": _cmd_replicate,
        "matrix": _cmd_matrix,
        "profile": _cmd_profile,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
