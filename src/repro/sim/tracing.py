"""Micro-simulation instrumentation: command traces and occupancy probes.

* :class:`CommandTraceRecorder` captures the rdCAS/wrCAS stream at the
  memory controller to regenerate Fig. 9 (the per-CompCpy monotonic address
  sweep with interleaved self-recycle writes).
* :class:`ScratchpadProbe` samples scratchpad occupancy over simulated
  cycles to regenerate Fig. 10 (the self-recycle equilibrium under varying
  LLC provisioning).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TraceSummary:
    reads: int
    writes: int
    read_addresses_monotonic_fraction: float
    first_read_cycle: int
    first_write_cycle: int

    @property
    def read_write_slack_cycles(self) -> int:
        return self.first_write_cycle - self.first_read_cycle


class CommandTraceRecorder:
    """Analyses the MemoryController's trace buffer."""

    def __init__(self, memory_controller):
        if memory_controller.trace is None:
            raise ValueError("memory controller built without trace=True")
        self.mc = memory_controller

    def entries(self, kind: str = None, address_range: tuple = None) -> list:
        """Trace entries filtered by command kind and/or address range."""
        out = []
        for entry in self.mc.trace:
            if kind and entry.kind != kind:
                continue
            if address_range and not address_range[0] <= entry.address < address_range[1]:
                continue
            out.append(entry)
        return out

    def summarize(self, sbuf_range: tuple, dbuf_range: tuple) -> TraceSummary:
        """Characterise one CompCpy call's command stream."""
        reads = self.entries("rdCAS", sbuf_range)
        writes = self.entries("wrCAS", dbuf_range)
        monotonic = 0
        for previous, current in zip(reads, reads[1:]):
            if current.address >= previous.address:
                monotonic += 1
        fraction = monotonic / (len(reads) - 1) if len(reads) > 1 else 1.0
        return TraceSummary(
            reads=len(reads),
            writes=len(writes),
            read_addresses_monotonic_fraction=fraction,
            first_read_cycle=reads[0].cycle if reads else 0,
            first_write_cycle=writes[0].cycle if writes else 0,
        )

    def scatter(self) -> list:
        """(cycle, kind, address) tuples — the raw points of Fig. 9."""
        return [(e.cycle, e.kind, e.address) for e in self.mc.trace]


@dataclass
class OccupancySample:
    cycle: int
    used_bytes: int
    used_pages: int


class ScratchpadProbe:
    """Samples scratchpad occupancy as offloads stream through."""

    def __init__(self, device):
        self.device = device
        self.samples = []

    def sample(self, cycle: int) -> OccupancySample:
        """Record current scratchpad occupancy at `cycle`."""
        record = OccupancySample(
            cycle=cycle,
            used_bytes=self.device.scratchpad.used_bytes,
            used_pages=self.device.scratchpad.used_pages,
        )
        self.samples.append(record)
        return record

    def equilibrium_bytes(self, tail_fraction: float = 0.5) -> float:
        """Mean occupancy over the trailing window (the Fig. 10 plateau)."""
        if not self.samples:
            return 0.0
        tail = self.samples[int(len(self.samples) * (1 - tail_fraction)) :]
        return sum(s.used_bytes for s in tail) / len(tail)

    def peak_bytes(self) -> int:
        """Highest occupancy observed."""
        return max((s.used_bytes for s in self.samples), default=0)
