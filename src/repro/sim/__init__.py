"""System-level simulation framework.

Two layers:

* The **micro** layer (:mod:`repro.sim.tracing` plus the functional stack in
  :mod:`repro.core`) simulates DDR commands and cachelines — it drives the
  trace/occupancy results (Figs. 9 and 10) and every correctness test.
* The **macro** layer (:mod:`repro.sim.server`) is a calibrated analytic
  model of the Nginx server: per-request CPU cycles, DDR traffic, cache
  pressure, and accelerator occupancy per ULP placement — it drives the
  end-to-end comparisons (Figs. 3, 11, 12 and Table I).
"""

from repro.sim.server import (
    Placement,
    ServerModel,
    ServerMetrics,
    Ulp,
    WorkloadSpec,
    corun,
)
from repro.sim.tracing import CommandTraceRecorder, ScratchpadProbe

__all__ = [
    "Placement",
    "ServerModel",
    "ServerMetrics",
    "Ulp",
    "WorkloadSpec",
    "corun",
    "CommandTraceRecorder",
    "ScratchpadProbe",
]
