"""Macro server model: Nginx under a closed-loop load generator.

An analytic, fixed-point model of the paper's testbed (Sec. VI): an Nginx
server with `threads` worker cores serving `message_bytes` responses to
`connections` persistent wrk connections over 100 GbE, with the ULP executed
at one of four placements.

Per request, every placement contributes a resource vector:

* **CPU cycles** — protocol stack + ULP compute + offload management +
  memory-stall cycles derived from the request's cache-missing traffic;
* **DDR bytes** — data moved over the memory channels.  The baseline is the
  paper's non-zero-copy stack (Sec. IV-E), so a CPU-resident ULP drags the
  payload through the cache many times: storage DMA leak, ULP read, result
  write(+RFO), socket copy, and the final NIC DMA — the "ping-pong" of
  Fig. 1a.  SmartDIMM collapses those to the CompCpy read, the self-recycle
  write, and the NIC DMA (Fig. 1c);
* **cache pressure** — LLC bytes the request's in-flight data occupies,
  weighted by how long it sits there (slow ULPs hold buffers longer and
  thrash harder);
* **PCIe / accelerator occupancy** — for lookaside offload, including the
  synchronous-API blocking latency that makes QuickAssist unattractive for
  fine-grain offloads (Observation 2).

Cache contention closes the loop: total pressure (connections, in-flight
buffers, background tenants, co-runners) sets the LLC miss probability,
which feeds back into DDR traffic and stall cycles.  The model iterates to
a fixed point, then reports RPS = min(cpu, link, memory, accelerator) and
the utilisations at that operating point.

The evaluation scenarios deliberately model *high LLC contention* — the
paper states its experiments "consider scenarios with high LLC contention
... otherwise, it is optimal to run ULPs on the CPU" (Sec. VI) — via the
`background_pressure_bytes` term (co-located tenants plus DDIO-restricted
effective capacity).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.cpu.costs import CostModel, DEFAULT_COSTS


class Ulp(enum.Enum):
    """The upper-layer protocol the server applies to responses."""

    NONE = "none"  # plain HTTP
    TLS = "tls"
    DEFLATE = "deflate"


class Placement(enum.Enum):
    """Where the ULP executes."""

    CPU = "cpu"
    SMARTNIC = "smartnic"
    QUICKASSIST = "quickassist"
    SMARTDIMM = "smartdimm"
    #: the Sec. IV-E projection: new DDR commands (CMP_RDCAS/SPAD_WB) and a
    #: controller-side offload table — no CPU copy, no cache traffic, no
    #: host-bus bursts for the transform.  A design study, not the paper's
    #: evaluated prototype.
    SMARTDIMM_DIRECT = "smartdimm_direct"


@dataclass
class WorkloadSpec:
    """One Nginx deployment under closed-loop load."""

    ulp: Ulp
    placement: Placement
    message_bytes: int = 4096
    connections: int = 1024
    threads: int = 10
    compression_ratio_cpu: float = 0.32  # zlib -6 on web corpora
    compression_ratio_dsa: float = 0.42  # fixed-Huffman, banked matcher
    background_pressure_bytes: float = 14e6  # co-located tenants (Sec. VI)

    def __post_init__(self):
        if self.ulp is Ulp.DEFLATE and self.placement is Placement.SMARTNIC:
            raise ValueError(
                "SmartNICs cannot autonomously offload non-size-preserving "
                "ULPs such as compression (Observation 1)"
            )


@dataclass
class RequestCosts:
    """Per-request resource vector at a given miss probability."""

    cpu_cycles: float
    ddr_bytes: float
    pressure_bytes: float  # LLC bytes held, residency-weighted
    output_bytes: int
    pcie_bytes: float = 0.0
    accel_block_seconds: float = 0.0  # sync offload API blocks the worker
    accel_bytes: float = 0.0  # payload through the lookaside card
    # How violently this placement churns the stack's metadata lines: a
    # cache-resident ULP evicts them dirty (refill + writeback), while the
    # SmartDIMM path leaves them mostly undisturbed.
    stack_amp: float = 1.5


@dataclass
class ServerMetrics:
    """The three bars of Figs. 11/12 plus supporting detail."""

    rps: float
    cpu_utilisation: float
    membw_bytes_per_request: float
    membw_bytes_per_sec: float
    miss_probability: float
    bottleneck: str
    cycles_per_request: float
    output_bytes: int
    pressure_bytes_per_request: float = 0.0
    pcie_bytes_per_request: float = 0.0

    @property
    def membw_utilisation(self) -> float:
        return self.membw_bytes_per_sec / DEFAULT_COSTS.ddr_peak_bytes_per_sec


def _dma_factor(p: float) -> float:
    """Fraction of a DMA/DDIO traversal that reaches DRAM: DDIO serves it
    from the LLC when resident, but contention evicts it first."""
    return 0.35 + 0.65 * p


class ServerModel:
    """Fixed-point closed-loop server model."""

    ITERATIONS = 30

    def __init__(
        self,
        spec: WorkloadSpec,
        costs: CostModel = DEFAULT_COSTS,
        llc_bytes: float = 27.5e6,  # Xeon Gold 6242: L3 + L2 slices
        external_pressure_bytes: float = 0.0,
        membw_available: float = None,
        llc_share: float = 1.0,
        miss_curve_k: float = 1.35,
    ):
        self.spec = spec
        self.costs = costs
        self.llc_bytes = llc_bytes * llc_share
        self.external_pressure = external_pressure_bytes
        self.membw_available = membw_available or costs.ddr_peak_bytes_per_sec
        self.miss_curve_k = miss_curve_k

    # -- contention ---------------------------------------------------------------------

    def miss_probability(self, pressure_bytes: float) -> float:
        """Saturating-exponential miss curve in working-set / capacity."""
        ratio = pressure_bytes / self.llc_bytes
        return 1.0 - math.exp(-self.miss_curve_k * ratio)

    # -- per-placement request costs ---------------------------------------------------------

    def request_costs(self, p_miss: float) -> RequestCosts:
        """Per-request resource vector at miss probability `p_miss`."""
        builder = {
            (Ulp.NONE, Placement.CPU): self._http_costs,
            (Ulp.TLS, Placement.CPU): self._tls_cpu_costs,
            (Ulp.TLS, Placement.SMARTNIC): self._tls_smartnic_costs,
            (Ulp.TLS, Placement.QUICKASSIST): self._tls_qat_costs,
            (Ulp.TLS, Placement.SMARTDIMM): self._tls_smartdimm_costs,
            (Ulp.TLS, Placement.SMARTDIMM_DIRECT): self._tls_smartdimm_direct_costs,
            (Ulp.DEFLATE, Placement.CPU): self._deflate_cpu_costs,
            (Ulp.DEFLATE, Placement.QUICKASSIST): self._deflate_qat_costs,
            (Ulp.DEFLATE, Placement.SMARTDIMM): self._deflate_smartdimm_costs,
        }.get((self.spec.ulp, self.spec.placement))
        if builder is None:
            raise ValueError(
                "unsupported combination %s on %s" % (self.spec.ulp, self.spec.placement)
            )
        costs = builder(p_miss)
        # Common per-request work: accept/parse/log plus the TCP transmit
        # path, and the stack-metadata churn whose misses everyone pays.
        stack_bytes = self.costs.stack_touch_bytes_per_request * costs.stack_amp
        costs.ddr_bytes += stack_bytes * p_miss * 1.5
        costs.cpu_cycles += (
            self.costs.http_parse_cycles
            + 2 * self.costs.syscall_cycles
            + self.costs.tcp_tx_cycles(costs.output_bytes)
            + self._stall_cycles(stack_bytes * p_miss)
        )
        return costs

    def _stall_cycles(self, missing_bytes: float) -> float:
        seconds = missing_bytes / self.costs.per_core_miss_bandwidth
        return seconds * self.costs.core_ghz * 1e9

    # .. plain HTTP ..............................................................

    def _http_costs(self, p: float) -> RequestCosts:
        m = self.spec.message_bytes
        # sendfile: storage DMA leak + NIC DMA, both DDIO-moderated.
        ddr = m * p + m * _dma_factor(p)
        return RequestCosts(
            cpu_cycles=0.0,
            ddr_bytes=ddr,
            pressure_bytes=0.6 * m,
            output_bytes=m,
            stack_amp=1.0,
        )

    # .. TLS ........................................................................

    def _tls_cpu_costs(self, p: float) -> RequestCosts:
        m = self.spec.message_bytes
        crypto = self.costs.aes_gcm_cycles(m) + self.costs.tls_record_framing_cycles * max(
            1, m // 16384
        )
        # Non-zero-copy ping-pong (Fig. 1a).  Long-usage-distance stages
        # (storage DMA leak -> plaintext read) miss with probability p;
        # short-distance stages (ciphertext writeback/refill, skb copy)
        # only round-trip DRAM under heavier contention, modelled as p^2.
        ddr = 2 * m * p + 3 * m * p * p + m * _dma_factor(p)
        stalls = self._stall_cycles(m * (2 * p + p * p))
        copy = self.costs.memcpy_cycles(m, cold=p > 0.5)  # socket copy
        # Plaintext + ciphertext + skb live in the LLC from encrypt to ACK,
        # held longer because the worker serialises crypto with the stack.
        return RequestCosts(
            cpu_cycles=crypto + copy + stalls,
            ddr_bytes=ddr,
            pressure_bytes=4.5 * m,
            output_bytes=m,
            stack_amp=2.0,
        )

    def _tls_smartnic_costs(self, p: float) -> RequestCosts:
        m = self.spec.message_bytes
        segments = max(1, (m + self.costs.mss_bytes - 1) // self.costs.mss_bytes)
        records = max(1, (m + 16383) // 16384)
        # Offload initialisation is per TLS record (metadata push to the
        # NIC), with light per-segment tracking: the init cost is why 4KB
        # messages see no benefit (Fig. 11) while 16KB+ messages do.
        driver = 6500 * records + 300 * segments
        # Plaintext traverses the stack (leak + read + socket copy + DMA)
        # but no ciphertext generation on the CPU.
        ddr = m * p + m * p + 2 * m * p + m * _dma_factor(p)
        stalls = self._stall_cycles(2 * m * p)
        copy = self.costs.memcpy_cycles(m, cold=p > 0.5)
        return RequestCosts(
            cpu_cycles=driver + copy + stalls,
            ddr_bytes=ddr,
            pressure_bytes=3.0 * m,
            output_bytes=m,
            stack_amp=1.5,
        )

    def _tls_qat_costs(self, p: float) -> RequestCosts:
        m = self.spec.message_bytes
        overhead = self.costs.qat_setup_cycles + self.costs.qat_completion_cycles
        copy = 2 * self.costs.memcpy_cycles(m, cold=p > 0.5)  # into/out of DMA buffers
        # Staging copies + card DMA both ways + socket copy + NIC DMA.
        ddr = m * p + 2 * m + 4 * m * p + m * _dma_factor(p)
        stalls = self._stall_cycles(3 * m * p)
        return RequestCosts(
            cpu_cycles=overhead + copy + stalls,
            ddr_bytes=ddr,
            pressure_bytes=5.0 * m,
            output_bytes=m,
            stack_amp=2.2,
            pcie_bytes=2 * m,
            accel_block_seconds=self.costs.qat_offload_latency_s
            + m / self.costs.qat_crypto_bytes_per_sec,
            accel_bytes=m,
        )

    def _tls_smartdimm_costs(self, p: float) -> RequestCosts:
        m = self.spec.message_bytes
        pages = max(1, (m + 16 + 4095) // 4096)
        lines = pages * 64
        # Under contention the sbuf has already been evicted, so its flush
        # is cheap (the paper's 50%-faster measurement); on a calm cache the
        # flush pays the full dirty-writeback price per line — one reason
        # offload only makes sense when the LLC is contended (Sec. VI).
        sbuf_flush = lines * (
            p * self.costs.compcpy_flush_clean_cycles
            + (1 - p) * 2.5 * self.costs.compcpy_flush_dirty_cycles
        )
        cycles = (
            self.costs.gcm_init_cycles  # H, EIV on the CPU (Fig. 7)
            + self.costs.compcpy_copy_cycles_per_byte * pages * 4096
            + sbuf_flush
            + lines * self.costs.compcpy_flush_dirty_cycles  # dbuf flush at USE
            + (pages + 1) * self.costs.mmio_write_cycles
            + self.costs.compcpy_lock_cycles
        )
        # Fig. 1c: storage DMA leak + sbuf flush writebacks (only when the
        # data was still cached) + sbuf rdCAS stream + self-recycle writes +
        # NIC DMA from DRAM; the payload never re-enters the cache.
        ddr = m * p + m * (1 - p) + m + m + m
        stalls = self._stall_cycles(0.3 * m)  # streamed loads overlap the DSA
        return RequestCosts(
            cpu_cycles=cycles + stalls,
            ddr_bytes=ddr,
            pressure_bytes=0.3 * m,  # copied through and flushed immediately
            output_bytes=m,
            stack_amp=0.8,
        )

    def _tls_smartdimm_direct_costs(self, p: float) -> RequestCosts:
        """The Sec. IV-E direct-offload projection: the CPU issues compute
        reads and lets the controller's timer table retire results; the
        payload never crosses the host bus or the cache for the transform."""
        m = self.spec.message_bytes
        pages = max(1, (m + 16 + 4095) // 4096)
        lines = pages * 64
        cycles = (
            self.costs.gcm_init_cycles
            + lines * 2  # one command-slot issue per CMP_RDCAS
            + (pages + 1) * self.costs.mmio_write_cycles
            + self.costs.compcpy_lock_cycles
        )
        # Channel traffic: only the NIC's consumption DMA; the DSA's DRAM
        # accesses are internal to the DIMM (they consume device bandwidth
        # but no host-bus bytes, which is what this metric counts).
        ddr = m * p + m
        return RequestCosts(
            cpu_cycles=cycles,
            ddr_bytes=ddr,
            pressure_bytes=0.05 * m,
            output_bytes=m,
            stack_amp=0.7,
        )

    # .. deflate ...........................................................................

    def _deflate_cpu_costs(self, p: float) -> RequestCosts:
        m = self.spec.message_bytes
        out = max(1, int(m * self.spec.compression_ratio_cpu))
        compress = self.costs.deflate_cycles(m) + 15000  # + stream setup/teardown
        # Window + hash chains walked per input byte, cold per request at
        # high connection counts, plus the output's copies to the socket.
        state = self.costs.deflate_state_bytes
        ddr = m * p + m * p + state * p * 1.2 + 2 * out * p + 2 * out * p + out * _dma_factor(p)
        stalls = self._stall_cycles((m + 0.35 * state) * p)
        return RequestCosts(
            cpu_cycles=compress + stalls,
            ddr_bytes=ddr,
            pressure_bytes=1.5 * m + 0.6 * state,
            output_bytes=out,
            stack_amp=2.2,
        )

    def _deflate_qat_costs(self, p: float) -> RequestCosts:
        m = self.spec.message_bytes
        out = max(1, int(m * self.spec.compression_ratio_cpu))
        overhead = self.costs.qat_setup_cycles + self.costs.qat_completion_cycles
        copy = 2 * self.costs.memcpy_cycles(m, cold=p > 0.5)
        ddr = m * p + (m + out) + 4 * m * p + out * _dma_factor(p)
        stalls = self._stall_cycles(2 * m * p)
        return RequestCosts(
            cpu_cycles=overhead + copy + stalls,
            ddr_bytes=ddr,
            pressure_bytes=4.0 * m,
            output_bytes=out,
            stack_amp=2.2,
            pcie_bytes=m + out,
            # Compression on the 8970 is a longer round trip than crypto,
            # and the nginx integration is synchronous: the worker blocks
            # for the full request serialisation + card round trip.  The
            # effective sync-mode service rate is the constant that makes
            # QuickAssist "unsuitable for fine-grain offloading" (Fig. 12).
            accel_block_seconds=self.costs.qat_offload_latency_s
            + m / self.costs.qat_sync_deflate_bytes_per_sec,
            accel_bytes=m,
        )

    def _deflate_smartdimm_costs(self, p: float) -> RequestCosts:
        m = self.spec.message_bytes
        out = max(1, int(m * self.spec.compression_ratio_dsa))
        pages = max(1, (m + 4095) // 4096)
        lines = pages * 64
        sbuf_flush = lines * (
            p * self.costs.compcpy_flush_clean_cycles
            + (1 - p) * 2.5 * self.costs.compcpy_flush_dirty_cycles
        )
        cycles = (
            self.costs.compcpy_copy_cycles_per_byte * pages * 4096
            + sbuf_flush
            + lines * self.costs.compcpy_flush_dirty_cycles
            + lines * 400  # ordered copy: full membar + drain per 64B segment
            + (2 * pages) * self.costs.mmio_write_cycles  # one CompCpy per page
            + pages * (self.costs.compcpy_lock_cycles + 4500)  # per-page call + socket write
        )
        ddr = m * p + m * (1 - p) + m + out + out * _dma_factor(p)
        stalls = self._stall_cycles(0.3 * m)
        return RequestCosts(
            cpu_cycles=cycles + stalls,
            ddr_bytes=ddr,
            pressure_bytes=0.3 * m,
            output_bytes=out,
            stack_amp=0.8,
        )

    # -- fixed point ----------------------------------------------------------------------------

    def solve(self) -> ServerMetrics:
        """Iterate the contention fixed point and report the operating point."""
        spec = self.spec
        p = 0.5
        costs = self.request_costs(p)
        rps = 1.0
        bounds = {}
        for _ in range(self.ITERATIONS):
            # Half the connections have a response somewhere in flight;
            # their buffers and per-connection state occupy the LLC.
            inflight = max(spec.threads * 4, spec.connections // 2)
            pressure = (
                spec.connections * self.costs.connection_state_bytes
                + inflight * costs.pressure_bytes
                + spec.background_pressure_bytes
                + self.external_pressure
            )
            p = self.miss_probability(pressure)
            costs = self.request_costs(p)
            bounds = {
                "cpu": spec.threads * self.costs.core_ghz * 1e9 / costs.cpu_cycles
                if costs.cpu_cycles
                else float("inf"),
                "link": self.costs.link_bytes_per_sec / max(costs.output_bytes, 1),
                "memory": self.membw_available / max(costs.ddr_bytes, 1),
                "pcie": self.costs.pcie_bytes_per_sec / costs.pcie_bytes
                if costs.pcie_bytes
                else float("inf"),
                # Synchronous offload API: each worker thread blocks for the
                # round trip, so the thread pool caps concurrent offloads.
                "accelerator": spec.threads / costs.accel_block_seconds
                if costs.accel_block_seconds
                else float("inf"),
            }
            rps = min(bounds.values())
        bottleneck = min(bounds, key=bounds.get)
        cpu_util = min(
            1.0, rps * costs.cpu_cycles / (spec.threads * self.costs.core_ghz * 1e9)
        )
        return ServerMetrics(
            rps=rps,
            cpu_utilisation=cpu_util,
            membw_bytes_per_request=costs.ddr_bytes,
            membw_bytes_per_sec=rps * costs.ddr_bytes,
            miss_probability=p,
            bottleneck=bottleneck,
            cycles_per_request=costs.cpu_cycles,
            output_bytes=costs.output_bytes,
            pressure_bytes_per_request=costs.pressure_bytes,
            pcie_bytes_per_request=costs.pcie_bytes,
        )


# -- co-running workloads (Table I) ---------------------------------------------------------------


@dataclass
class CoRunnerSpec:
    """A cache/bandwidth-intensive co-runner (505.mcf-like)."""

    instances: int = 10
    bytes_per_sec_solo: float = 30e9  # aggregate DDR demand when unimpeded
    pressure_bytes: float = 18e6  # live LLC footprint
    membw_sensitivity: float = 0.85  # fraction of mcf runtime that is memory-bound


@dataclass
class CoRunResult:
    nginx_solo: ServerMetrics
    nginx_corun: ServerMetrics
    corunner_slowdown: float

    @property
    def nginx_slowdown(self) -> float:
        return (self.nginx_solo.rps - self.nginx_corun.rps) / self.nginx_solo.rps


def corun(
    spec: WorkloadSpec,
    corunner: CoRunnerSpec = None,
    costs: CostModel = DEFAULT_COSTS,
    llc_bytes: float = 27.5e6,
) -> CoRunResult:
    """Solve Nginx and a memory-intensive co-runner sharing the socket.

    Interference mechanisms, each hitting the placements differently:

    * **Memory latency stretch.**  Combined DDR demand loads the channels;
      queueing stretches every miss.  Stall-heavy placements (CPU-resident
      ULPs) lose the most, the stall-light SmartDIMM path the least.
    * **LLC theft.**  The co-runner's live footprint raises the server's
      miss probability (and the server's churn slows the co-runner).
    * **PCIe/IIO contention.**  The lookaside card's DMA and doorbell
      traffic contends in the IIO; under memory load its offload round trip
      inflates, which directly caps the synchronous QAT configuration and
      drags mcf down with it (Table I's 28.7%/37.9% outliers).
    """
    corunner = corunner or CoRunnerSpec()
    peak = costs.ddr_peak_bytes_per_sec
    solo = ServerModel(spec, costs, llc_bytes).solve()
    stretch = 1.0
    nginx = solo
    for _ in range(40):
        corunner_bw = corunner.bytes_per_sec_solo / stretch
        load = min((nginx.membw_bytes_per_sec + corunner_bw) / peak, 0.98)
        target = 1.0 + 0.21 * load * load / (1.0 - 0.65 * load)
        stretch = 0.5 * stretch + 0.5 * target  # damped fixed point
        co_costs = costs.with_overrides(
            per_core_miss_bandwidth=costs.per_core_miss_bandwidth / stretch,
            qat_offload_latency_s=costs.qat_offload_latency_s * (1.0 + 1.1 * (stretch - 1.0)),
            # Polling loops spin longer when the card's responses queue
            # behind contended IIO/DRAM traffic.
            qat_completion_cycles=int(costs.qat_completion_cycles * (1.0 + 2.5 * (stretch - 1.0))),
            qat_setup_cycles=int(costs.qat_setup_cycles * (1.0 + 1.5 * (stretch - 1.0))),
        )
        nginx = ServerModel(
            spec,
            co_costs,
            llc_bytes,
            external_pressure_bytes=corunner.pressure_bytes,
        ).solve()
    # The co-runner's slowdown: bandwidth queueing, cache churn from the
    # server, and IIO interference when a PCIe accelerator is in play.
    churn_bytes_per_sec = nginx.rps * nginx.pressure_bytes_per_request
    pcie_bytes_per_sec = nginx.rps * nginx.pcie_bytes_per_request
    corunner_slowdown = corunner.membw_sensitivity * (
        0.275 * nginx.membw_bytes_per_sec / peak
        + 0.03 * churn_bytes_per_sec / (churn_bytes_per_sec + 10e9)
        + 0.45 * pcie_bytes_per_sec / costs.pcie_bytes_per_sec
    )
    return CoRunResult(
        nginx_solo=solo, nginx_corun=nginx, corunner_slowdown=corunner_slowdown
    )
