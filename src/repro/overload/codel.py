"""CoDel-style admission controller for fleet ingress.

CoDel (Controlled Delay, Nichols & Jacobson 2012) distinguishes *good*
queues (bursts that drain within an RTT) from *bad* queues (standing
backlog) by watching the per-item sojourn time: if the minimum sojourn
over an interval never falls below ``target``, the queue is standing and
items are dropped at an increasing rate (``interval / sqrt(n)`` between
drops) until it drains.

Here the same state machine runs at the fleet's front door: every
completed station dequeue reports its sojourn (wait) time via
:meth:`observe`, and :meth:`should_shed` answers whether the *next
arriving request* should be rejected at admission.  Shedding at ingress
is strictly better than shedding in the middle of the pipeline — no
service time is spent on work that will miss its deadline anyway.

The controller also keeps an EWMA of recent sojourn times which the
policy layer uses for *brownout* decisions (degrade service quality
before dropping traffic).
"""

from __future__ import annotations

import math


class CoDelController:
    """Sojourn-time controlled shedding, adapted from the CoDel AQM."""

    def __init__(self, target_s: float, interval_s: float):
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("target_s and interval_s must be positive")
        self.target_s = target_s
        self.interval_s = interval_s
        # CoDel state machine.
        self._first_above_s: float | None = None
        self.dropping = False
        self.drop_next_s = 0.0
        self.drop_count = 0
        self._last_drop_count = 0
        # Telemetry.
        self.min_sojourn_s = math.inf
        self.ewma_sojourn_s = 0.0
        self._ewma_alpha = 0.2
        self.observed = 0
        self.shed = 0

    # -- sojourn feed -----------------------------------------------------------

    def observe(self, now_s: float, sojourn_s: float) -> None:
        """Feed one station dequeue's sojourn (queue-wait) time."""
        self.observed += 1
        self.min_sojourn_s = min(self.min_sojourn_s, sojourn_s)
        self.ewma_sojourn_s += self._ewma_alpha * (sojourn_s - self.ewma_sojourn_s)
        if sojourn_s < self.target_s:
            # Below target: the queue is draining — leave dropping state.
            self._first_above_s = None
            if self.dropping:
                self.dropping = False
        elif self._first_above_s is None:
            # First sojourn above target: arm the interval timer.
            self._first_above_s = now_s + self.interval_s

    # -- admission decision -----------------------------------------------------

    def should_shed(self, now_s: float) -> bool:
        """Whether the request arriving at `now_s` should be rejected."""
        above = self._first_above_s is not None and now_s >= self._first_above_s
        if not self.dropping:
            if not above:
                return False
            # Sojourn stayed above target for a full interval: start dropping.
            self.dropping = True
            # Re-entering soon after the last dropping episode resumes at a
            # similar rate instead of restarting slowly (standard CoDel).
            if self.drop_count > 2 and now_s - self.drop_next_s < self.interval_s:
                self.drop_count = self._last_drop_count - 2
            else:
                self.drop_count = 0
            self.drop_count += 1
            self._last_drop_count = self.drop_count
            self.drop_next_s = now_s + self.interval_s / math.sqrt(self.drop_count)
            self.shed += 1
            return True
        if now_s >= self.drop_next_s:
            self.drop_count += 1
            self._last_drop_count = self.drop_count
            self.drop_next_s += self.interval_s / math.sqrt(self.drop_count)
            self.shed += 1
            return True
        return False

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict:
        """Deterministic JSON-ready snapshot of the controller state."""
        return {
            "target_s": self.target_s,
            "interval_s": self.interval_s,
            "observed": self.observed,
            "shed": self.shed,
            "drop_count": self.drop_count,
            "ewma_sojourn_s": self.ewma_sojourn_s,
        }
