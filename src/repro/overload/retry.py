"""Shared token-bucket retry budgets with exponential backoff + jitter.

The failure-handling PR gave every retry loop its own bounded count
(``max_retries`` per operation).  Per-operation caps bound the *worst
single request* but not the *aggregate*: under overload every operation
fails, every operation retries, and the retry traffic multiplies the
offered load by ``1 + max_retries`` — the classic retry storm that turns
a 1.2x overload into a 3x collapse.

:class:`RetryBudget` is the standard production counter-measure (gRPC /
Envoy style): retries spend from a shared token bucket that only refills
as *successful* operations complete, so the steady-state retry fraction
is capped at ``refill_per_success`` of goodput no matter how hard the
underlying layer is failing.  A drained bucket fails requests fast
instead of amplifying the storm.

Backoff between retries is exponential with deterministic jitter: the
jitter is drawn from the budget's own seeded :class:`random.Random`, so
identically-seeded runs back off identically (the repo-wide
byte-identical-output guarantee) while still decorrelating retry trains
within a run.
"""

from __future__ import annotations

import random
import zlib


class RetryBudget:
    """A token bucket shared by every retry loop of one subsystem.

    Parameters
    ----------
    capacity:
        Bucket size — the burst of retries allowed before the budget
        drains (also the initial fill).
    refill_per_success:
        Tokens returned per successful operation (``on_success``).  The
        long-run retry fraction is capped at this value: 0.5 means at
        most one retry per two successes.
    backoff_base_s / backoff_cap_s:
        Exponential backoff schedule: attempt ``n`` waits
        ``min(cap, base * 2**(n-1))`` scaled by the jitter draw.
    jitter:
        Fraction of full jitter: the backoff is multiplied by a value
        uniform in ``[1 - jitter, 1]`` (decorrelates retry trains).
    seed:
        Seeds the jitter RNG; identical seeds reproduce identical
        backoff sequences.
    """

    def __init__(self, capacity: float = 16.0, refill_per_success: float = 0.5,
                 backoff_base_s: float = 50e-6, backoff_cap_s: float = 5e-3,
                 jitter: float = 0.5, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_per_success < 0:
            raise ValueError("refill_per_success must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if backoff_base_s < 0 or backoff_cap_s < backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.jitter = jitter
        self.tokens = float(capacity)
        self._rng = random.Random(seed)
        # Accounting (deterministic; surfaced in overload reports).
        self.granted = 0
        self.denied = 0
        self.successes = 0
        self.backoff_total_s = 0.0
        # Per-tenant child budgets (hierarchical isolation; QoS PR).
        self.children = {}

    # -- the budget -------------------------------------------------------------

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend `tokens` for one retry; False means fail fast (no retry)."""
        if self.tokens >= tokens:
            self.tokens -= tokens
            self.granted += 1
            return True
        self.denied += 1
        return False

    def on_success(self) -> None:
        """One underlying operation succeeded: refill the bucket."""
        self.successes += 1
        self.tokens = min(self.capacity, self.tokens + self.refill_per_success)

    @property
    def exhausted(self) -> bool:
        """Whether the next single-token acquire would be denied."""
        return self.tokens < 1.0

    # -- backoff ----------------------------------------------------------------

    def backoff_s(self, attempt: int) -> float:
        """Jittered exponential backoff before retry number `attempt` (>= 1).

        Deterministic given the seed and call sequence; the jitter draw
        scales the exponential term into ``[1 - jitter, 1]`` of its
        nominal value so synchronized retry trains spread out.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        nominal = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))
        scale = 1.0 - self.jitter * self._rng.random()
        wait = nominal * scale
        self.backoff_total_s += wait
        return wait

    # -- hierarchy ---------------------------------------------------------------

    def child(self, name: str, capacity: float = None,
              refill_per_success: float = None) -> "ChildRetryBudget":
        """A per-tenant child budget chained to this (parent) bucket.

        A child retry must find tokens in *both* buckets, so one tenant's
        retry storm drains its own child bucket long before it can drain
        the shared pool — the other tenants' children keep acquiring
        against an intact parent.  Created once and cached by name;
        capacity defaults to the parent's (pass a smaller slice to cap a
        tenant's burst below the pool size).
        """
        if name in self.children:
            return self.children[name]
        child = ChildRetryBudget(
            parent=self,
            name=name,
            capacity=capacity if capacity is not None else self.capacity,
            refill_per_success=(refill_per_success
                                if refill_per_success is not None
                                else self.refill_per_success),
            backoff_base_s=self.backoff_base_s,
            backoff_cap_s=self.backoff_cap_s,
            jitter=self.jitter,
            # Deterministic per-name seed: same child name, same jitter
            # stream, regardless of creation order.
            seed=zlib.crc32(name.encode("utf-8")),
        )
        self.children[name] = child
        return child

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict:
        """Deterministic JSON-ready snapshot of the budget state."""
        out = {
            "capacity": self.capacity,
            "tokens": self.tokens,
            "granted": self.granted,
            "denied": self.denied,
            "successes": self.successes,
            "backoff_total_s": self.backoff_total_s,
        }
        if self.children:
            out["children"] = {
                name: child.summary()
                for name, child in sorted(self.children.items())
            }
        return out


class ChildRetryBudget(RetryBudget):
    """One tenant's slice of a shared :class:`RetryBudget`.

    ``try_acquire`` must win tokens from the child bucket *and* the
    parent pool (spending both); ``on_success`` refills both.  The
    denial split is the isolation proof the QoS gate checks: a victim
    tenant whose retries are ever denied because the *parent* pool was
    drained (``denied_parent > 0``) has suffered cross-tenant budget
    exhaustion.
    """

    def __init__(self, parent: RetryBudget, name: str, **kwargs):
        super().__init__(**kwargs)
        self.parent = parent
        self.name = name
        self.denied_child = 0
        self.denied_parent = 0

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend from the child slice AND the shared pool; the denial
        reason (own slice vs parent drained) is recorded separately."""
        if self.tokens < tokens:
            self.denied += 1
            self.denied_child += 1
            return False
        # Child tokens suffice — now charge the shared pool.  Parent
        # accounting (granted/denied) stays at the parent so the pool's
        # summary reflects aggregate pressure.
        if not self.parent.try_acquire(tokens):
            self.denied += 1
            self.denied_parent += 1
            return False
        self.tokens -= tokens
        self.granted += 1
        return True

    def on_success(self) -> None:
        """A tenant success refills both its slice and the shared pool."""
        super().on_success()
        self.parent.on_success()

    def summary(self) -> dict:
        """Budget snapshot plus the cross-tenant denial split."""
        out = super().summary()
        out["denied_child"] = self.denied_child
        out["denied_parent"] = self.denied_parent
        return out
