"""The goodput-vs-offered-load sweep behind ``python -m repro overload``.

Three deterministic sections, written to ``BENCH_overload.json`` and gated
by ``benchmarks/perf/check_regression.py``:

* **sweep** — open-loop Poisson TLS traffic against a 2-server rack at
  0.5x-3x the analytic fixed-point capacity, once with the full overload
  stack on (``shed``: deadlines + CoDel admission + bounded queues +
  brownout) and once with it off (``noshed``: deadlines *measured* but
  never enforced).  The controlled curve must degrade gracefully —
  goodput at 2x >= 70% of peak, p99 bounded by the deadline; the
  uncontrolled curve exhibits the classic metastable collapse (throughput
  stays at capacity while goodput falls off a cliff, because every
  completion is late).
* **retry_amplification** — the micro-level half of the same story: a
  QuickAssist card dropping completions, retried under a shared token
  bucket vs an effectively unbounded budget.  The bounded budget caps the
  retry traffic (fail fast); the unbounded one multiplies the wasted
  wall-time per success.
* **chaos_composition** — overload and component failure at once: the 2x
  shed scenario with a ``node_down`` window injected by
  :class:`repro.cluster.chaos.FleetFaultInjector`, demonstrating the two
  robustness layers compose (requests re-route around the dead node *and*
  still meet deadlines).

Determinism contract: every number derives from seeded simulation — two
runs with the same seed produce byte-identical :func:`to_json` payloads
(``tests/overload/test_overload_smoke.py``).
"""

from __future__ import annotations

import json

from repro.cluster.chaos import FaultWindow, FleetFaultInjector
from repro.cluster.scenario import ClusterScenario, run_scenario
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.overload.retry import RetryBudget

#: Offered load as multiples of the analytic fixed-point capacity.
LOAD_FACTORS = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0)

#: The reduced sweep used by the tier-1 smoke test (<10 s).
QUICK_LOAD_FACTORS = (0.5, 1.0, 2.0)

#: Relative deadline applied to every request — ~10x the unloaded
#: service time of the 16 KB TLS request this sweep drives.
DEADLINE_S = 200e-6

#: The overload-control knobs of the "shed" curve.
CONTROL = {
    "deadline_s": DEADLINE_S,
    "shed_expired": True,
    "admission": "codel",
    "dsa_queue_limit": 16,
    "cpu_queue_limit": 64,
    "brownout_factor": 0.85,
}

#: The "noshed" curve: same deadline *measured*, nothing enforced.
NO_CONTROL = {
    "deadline_s": DEADLINE_S,
    "shed_expired": False,
    "admission": "none",
}


def overload_scenario(rate_rps: float, control: bool, seed: int,
                      duration_s: float, warmup_s: float) -> ClusterScenario:
    """One sweep point: open-loop Poisson TLS-16KB on a 2-server rack."""
    knobs = CONTROL if control else NO_CONTROL
    return ClusterScenario(
        servers=2, channels=4, threads=8,
        ulp="tls", placement="smartdimm", message_bytes=16384,
        mode="open", arrival="poisson", rate_rps=rate_rps,
        duration_s=duration_s, warmup_s=warmup_s, seed=seed,
        **knobs,
    )


def fleet_capacity_rps(seed: int = 11) -> float:
    """The analytic fixed-point capacity of the sweep's rack."""
    probe = overload_scenario(1.0, control=False, seed=seed,
                              duration_s=0.02, warmup_s=0.005)
    return probe.build_profile().model_metrics.rps * probe.servers


def sweep_durations(quick: bool) -> tuple:
    """(duration_s, warmup_s) for the full vs quick sweep window."""
    return (0.008, 0.002) if quick else (0.02, 0.005)


def _curve_point(factor: float, report) -> dict:
    over = report.overload
    return {
        "load_factor": factor,
        "offered_rps": factor,  # patched below with the absolute rate
        "rps": report.rps,
        "goodput_rps": over["goodput_rps"],
        "p99_s": report.latency["p99"],
        "deadline_met": over["deadline_met"],
        "deadline_missed": over["deadline_missed"],
        "rejected_admission": over["rejected_admission"],
        "rejected_backpressure": over["rejected_backpressure"],
        "shed": over["shed"],
        "brownouts": over["brownouts"],
    }


def run_sweep_point(factor: float, control: bool, seed: int,
                    duration_s: float, warmup_s: float) -> dict:
    """One curve point, pure: everything derives from the arguments.

    The capacity normalising ``factor`` into an absolute rate is the
    analytic fixed point — recomputed here (cheaply) so a point needs no
    ambient state and can run in any pool worker.
    """
    capacity = fleet_capacity_rps(seed)
    rate = factor * capacity
    scenario = overload_scenario(rate, control, seed, duration_s, warmup_s)
    point = _curve_point(factor, run_scenario(scenario))
    point["offered_rps"] = rate
    return point


def sweep_rollup(curves: dict, capacity: float) -> dict:
    """curves -> the full sweep section (curves + gate summary)."""

    def goodput_at(curve, factor):
        for point in curve:
            if point["load_factor"] == factor:
                return point["goodput_rps"]
        return None

    peak_shed = max(p["goodput_rps"] for p in curves["shed"])
    peak_noshed = max(p["goodput_rps"] for p in curves["noshed"])
    at2x_shed = goodput_at(curves["shed"], 2.0)
    at2x_noshed = goodput_at(curves["noshed"], 2.0)
    summary = {
        "capacity_rps": capacity,
        "deadline_s": DEADLINE_S,
        "peak_goodput_shed_rps": peak_shed,
        "peak_goodput_noshed_rps": peak_noshed,
        "goodput_2x_shed_rps": at2x_shed,
        "goodput_2x_noshed_rps": at2x_noshed,
        # The acceptance ratios check_regression.py gates on.
        "shed_2x_over_peak": (
            at2x_shed / peak_shed if at2x_shed is not None and peak_shed else None),
        "noshed_2x_over_peak": (
            at2x_noshed / peak_noshed
            if at2x_noshed is not None and peak_noshed else None),
    }
    return {"curves": curves, "summary": summary}


def run_sweep(seed: int = 11, load_factors=LOAD_FACTORS,
              duration_s: float = 0.02, warmup_s: float = 0.005) -> dict:
    """Goodput-vs-offered-load, shedding on and off."""
    curves = {
        name: [run_sweep_point(factor, control, seed, duration_s, warmup_s)
               for factor in load_factors]
        for name, control in (("shed", True), ("noshed", False))
    }
    return sweep_rollup(curves, fleet_capacity_rps(seed))


# -- retry amplification (micro) -----------------------------------------------------


def _drive_qat(budget: RetryBudget, seed: int, ops: int,
               probability: float, max_retries: int) -> dict:
    from repro.accel.quickassist import QuickAssist

    qat = QuickAssist(retry_budget=budget)
    qat.attach_fault_plan(FaultPlan(seed=seed, specs=(
        FaultSpec(FaultSite.ACCEL_COMPLETION_DROP, probability=probability,
                  params={"max_retries": max_retries}),
    )))
    key, nonce, payload = bytes(range(16)), bytes(range(12)), bytes(4096)
    ok = failed = 0
    wasted_s = 0.0
    latency_s = 0.0
    for _ in range(ops):
        try:
            result = qat.tls_encrypt(key, nonce, payload)
            ok += 1
            latency_s += result.offload_latency_s
        except Exception as error:
            failed += 1
            wasted_s += getattr(error, "wasted_seconds", 0.0)
    return {
        "ops": ops,
        "ok": ok,
        "failed": failed,
        "completions_lost": qat.completions_lost,
        "retries_executed": qat.completion_retries,
        "budget_denials": qat.budget_denials,
        "retries_per_op": (qat.completion_retries + qat.budget_denials) / ops,
        "latency_ok_s": latency_s,
        "wasted_failed_s": wasted_s,
        "budget": budget.summary(),
    }


def run_retry_amplification(seed: int = 11, ops: int = 60,
                            probability: float = 0.5,
                            max_retries: int = 8) -> dict:
    """The same lossy accelerator, retried with and without a real budget.

    The "unbounded" arm models PR 3's per-op-cap-only behaviour with a
    bucket too large to ever drain; the "budgeted" arm caps aggregate
    retry traffic at ~20% of successes and fails the rest fast.
    """
    budgeted = _drive_qat(
        RetryBudget(capacity=10.0, refill_per_success=0.2, seed=seed),
        seed, ops, probability, max_retries)
    unbounded = _drive_qat(
        RetryBudget(capacity=1e9, refill_per_success=0.0, seed=seed),
        seed, ops, probability, max_retries)
    return {
        "probability": probability,
        "max_retries_per_op": max_retries,
        "budgeted": budgeted,
        "unbounded": unbounded,
        "retry_reduction": (
            1.0 - budgeted["retries_executed"] / unbounded["retries_executed"]
            if unbounded["retries_executed"] else 0.0),
    }


# -- overload + chaos composition ----------------------------------------------------


def run_chaos_composition(seed: int = 11, duration_s: float = 0.02,
                          warmup_s: float = 0.005) -> dict:
    """2x overload with the control stack on, plus a node_down window."""
    capacity = fleet_capacity_rps(seed)
    scenario = overload_scenario(2.0 * capacity, control=True, seed=seed,
                                 duration_s=duration_s, warmup_s=warmup_s)
    injector = FleetFaultInjector([
        FaultWindow(kind="node_down", server=0,
                    start_s=warmup_s + 0.3 * (duration_s - warmup_s),
                    duration_s=0.3 * (duration_s - warmup_s)),
    ])
    report = run_scenario(scenario, fault_injector=injector)
    return {
        "offered_rps": 2.0 * capacity,
        "goodput_rps": report.overload["goodput_rps"],
        "rps": report.rps,
        "p99_s": report.latency["p99"],
        "overload": report.overload,
        "chaos": report.chaos,
    }


# -- experiment-matrix points --------------------------------------------------------


def matrix_points(seed: int, quick: bool) -> list:
    """Every instance label of this sweep's matrix target, in rollup order."""
    factors = QUICK_LOAD_FACTORS if quick else LOAD_FACTORS
    instances = ["load/%g/%s" % (factor, arm)
                 for arm in ("shed", "noshed") for factor in factors]
    instances.append("retry_amplification")
    if not quick:
        instances.append("chaos_composition")
    return instances


def run_point(spec) -> dict:
    """Pure matrix entry: one :class:`~repro.exp.spec.RunSpec` -> result."""
    duration_s, warmup_s = sweep_durations(spec.quick)
    if spec.instance.startswith("load/"):
        _, factor, arm = spec.instance.split("/")
        return run_sweep_point(float(factor), arm == "shed", spec.seed,
                               duration_s, warmup_s)
    if spec.instance == "retry_amplification":
        return run_retry_amplification(spec.seed)
    if spec.instance == "chaos_composition":
        return run_chaos_composition(spec.seed)
    raise ValueError("unknown overload instance %r" % spec.instance)


def rollup(results: dict, seed: int, quick: bool) -> dict:
    """Per-instance results -> the complete CLI/BENCH payload."""
    factors = QUICK_LOAD_FACTORS if quick else LOAD_FACTORS
    curves = {
        arm: [results["load/%g/%s" % (factor, arm)] for factor in factors]
        for arm in ("shed", "noshed")
    }
    report = {
        "seed": seed,
        "quick": quick,
        "sweep": sweep_rollup(curves, fleet_capacity_rps(seed)),
        "retry_amplification": results["retry_amplification"],
    }
    if not quick:
        report["chaos_composition"] = results["chaos_composition"]
    return report


# -- the full report -----------------------------------------------------------------


def run_overload(seed: int = 11, quick: bool = False) -> dict:
    """The complete ``python -m repro overload`` payload.

    A thin serial wrapper over the same pure points the experiment-matrix
    harness fans out: each instance runs in submission order in this
    process, then :func:`rollup` assembles the payload.
    """
    from repro.exp.spec import RunSpec

    results = {
        instance: run_point(RunSpec.make("overload", instance, seed,
                                         quick=quick))
        for instance in matrix_points(seed, quick)
    }
    return rollup(results, seed, quick)


def to_json(report: dict) -> str:
    """The deterministic serialisation written to BENCH_overload.json."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render(report: dict) -> str:
    """Human-readable CLI summary."""
    summary = report["sweep"]["summary"]
    lines = []
    lines.append("overload sweep (seed %d%s): capacity %.0f rps, deadline %.0fus"
                 % (report["seed"], ", quick" if report["quick"] else "",
                    summary["capacity_rps"], summary["deadline_s"] * 1e6))
    lines.append("  %-6s %-8s %12s %12s %10s" % (
        "load", "control", "goodput", "throughput", "p99"))
    for name in ("shed", "noshed"):
        for point in report["sweep"]["curves"][name]:
            p99 = point["p99_s"]
            lines.append("  %-6s %-8s %12.0f %12.0f %9.1fus" % (
                "%.2fx" % point["load_factor"], name,
                point["goodput_rps"], point["rps"],
                (p99 or 0.0) * 1e6))
    lines.append(
        "  goodput at 2x: shed %.0f (%.0f%% of peak), noshed %.0f (%.0f%% of peak)"
        % (summary["goodput_2x_shed_rps"] or 0.0,
           100.0 * (summary["shed_2x_over_peak"] or 0.0),
           summary["goodput_2x_noshed_rps"] or 0.0,
           100.0 * (summary["noshed_2x_over_peak"] or 0.0)))
    retry = report["retry_amplification"]
    lines.append(
        "retry amplification: budgeted %.2f retries/op (%d denials), "
        "unbounded %.2f retries/op (-%.0f%% retry traffic)"
        % (retry["budgeted"]["retries_per_op"],
           retry["budgeted"]["budget_denials"],
           retry["unbounded"]["retries_per_op"],
           100.0 * retry["retry_reduction"]))
    chaos = report.get("chaos_composition")
    if chaos is not None:
        lines.append(
            "overload + node_down: goodput %.0f rps at 2x offered, "
            "p99 %.1fus, availability %.3f"
            % (chaos["goodput_rps"], (chaos["p99_s"] or 0.0) * 1e6,
               chaos["chaos"]["availability"]))
    return "\n".join(lines)
