"""Overload-control configuration and the per-run policy object.

One :class:`OverloadPolicy` instance is threaded through a fleet run and
owns the four mechanisms of the overload PR:

* **deadlines** — :meth:`deadline_for` stamps every request with an
  absolute deadline at admission; stations consult
  :attr:`OverloadConfig.shed_expired` to decide whether expired work is
  shed on dequeue (the fleet does the shedding, the policy the bookkeeping);
* **admission control** — per-station :class:`~repro.overload.codel.
  CoDelController` instances fed by :meth:`observe`; :meth:`admit`
  rejects an arriving request when any station's controller is in its
  dropping state and due for a drop;
* **brownout** — when the smoothed sojourn of any station exceeds the
  brownout threshold, :meth:`brownout` tells the fleet to degrade the
  request (scale its DSA stage by ``brownout_factor`` — the "drop the
  compression level" move) instead of dropping it;
* **bounded queues** — the depth limits live here
  (``cpu_queue_limit`` / ``dsa_queue_limit``); the fleet enforces them
  and the scheduler re-routes around full stations.

Everything is deterministic: no RNG, no wall clock; all state advances
only on ``observe``/``admit`` calls driven by the seeded simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.overload.codel import CoDelController


@dataclass
class OverloadConfig:
    """Knobs for one run's overload control (all optional, all off by default)."""

    #: Relative deadline applied to every request (None: no deadline).
    deadline_s: float = None
    #: Shed expired work at station dequeues (False: deadlines are only
    #: *measured* — the "control off" curve of the sweep).
    shed_expired: bool = True
    #: Ingress admission controller: "codel" or "none".
    admission: str = "none"
    #: CoDel target sojourn; None derives deadline_s / 5.
    codel_target_s: float = None
    #: CoDel interval; None derives 4 x target.
    codel_interval_s: float = None
    #: Per-channel DSA queue depth limit (None: unbounded).
    dsa_queue_limit: int = None
    #: Per-server CPU worker queue depth limit (None: unbounded).
    cpu_queue_limit: int = None
    #: DSA-stage service multiplier under brownout (1.0: brownout disabled).
    brownout_factor: float = 1.0
    #: Smoothed-sojourn threshold that triggers brownout; None derives
    #: the CoDel target.
    brownout_threshold_s: float = None

    def __post_init__(self):
        if self.admission not in ("none", "codel"):
            raise ValueError("admission must be 'none' or 'codel'")
        if not 0.0 < self.brownout_factor <= 1.0:
            raise ValueError("brownout_factor must be in (0, 1]")
        if self.admission == "codel" and self.deadline_s is None \
                and self.codel_target_s is None:
            raise ValueError("codel admission needs deadline_s or codel_target_s")

    @property
    def enabled(self) -> bool:
        """Whether any overload mechanism (even measurement-only) is on."""
        return (self.deadline_s is not None or self.admission != "none"
                or self.dsa_queue_limit is not None
                or self.cpu_queue_limit is not None
                or self.brownout_factor < 1.0)

    @property
    def bounded(self) -> bool:
        return self.dsa_queue_limit is not None or self.cpu_queue_limit is not None

    def resolved_target_s(self) -> float:
        """CoDel target sojourn: explicit knob, else deadline_s / 5."""
        if self.codel_target_s is not None:
            return self.codel_target_s
        return self.deadline_s / 5.0

    def resolved_interval_s(self) -> float:
        """CoDel interval: explicit knob, else 4x the resolved target."""
        if self.codel_interval_s is not None:
            return self.codel_interval_s
        return 4.0 * self.resolved_target_s()


class OverloadPolicy:
    """Run-time state for one fleet's overload control."""

    #: Station names fed by the fleet, in deterministic evaluation order.
    STATIONS = ("cpu", "dsa")

    def __init__(self, config: OverloadConfig):
        self.config = config
        self.controllers = {}
        if config.admission == "codel":
            target = config.resolved_target_s()
            interval = config.resolved_interval_s()
            self.controllers = {
                station: CoDelController(target, interval)
                for station in self.STATIONS
            }

    # -- deadlines --------------------------------------------------------------

    def deadline_for(self, arrive_s: float, klass: str = None) -> float:
        """Absolute deadline for a request arriving at `arrive_s`.

        `klass` is accepted (and ignored) so the fleet has one call shape
        whether the policy is global or multi-tenant.
        """
        if self.config.deadline_s is None:
            return math.inf
        return arrive_s + self.config.deadline_s

    def expired(self, now_s: float, deadline_s: float) -> bool:
        """Whether expired work should be shed at `now_s` (dequeue time)."""
        return self.config.shed_expired and now_s >= deadline_s

    # -- admission + sojourn feed -----------------------------------------------

    def observe(self, station: str, now_s: float, sojourn_s: float,
                tenant: str = None) -> None:
        """Feed one station dequeue's queueing wait to its controller.

        `tenant` is accepted (and ignored) here; the multi-tenant
        subclass routes it to per-tenant controllers.
        """
        controller = self.controllers.get(station)
        if controller is not None:
            controller.observe(now_s, sojourn_s)

    def admit(self, now_s: float, tenant: str = None) -> bool:
        """Ingress decision for a request arriving now (False: reject)."""
        for station in self.STATIONS:
            controller = self.controllers.get(station)
            if controller is not None and controller.should_shed(now_s):
                return False
        return True

    # -- brownout ---------------------------------------------------------------

    def brownout(self, now_s: float, tenant: str = None) -> bool:
        """Whether arriving work should be served degraded instead of shed."""
        if self.config.brownout_factor >= 1.0 or not self.controllers:
            return False
        threshold = self.config.brownout_threshold_s
        if threshold is None:
            threshold = self.config.resolved_target_s()
        return any(controller.ewma_sojourn_s > threshold
                   for controller in self.controllers.values())

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict:
        """Deterministic JSON-ready snapshot: config plus controller state."""
        out = {
            "deadline_s": self.config.deadline_s,
            "shed_expired": self.config.shed_expired,
            "admission": self.config.admission,
            "dsa_queue_limit": self.config.dsa_queue_limit,
            "cpu_queue_limit": self.config.cpu_queue_limit,
            "brownout_factor": self.config.brownout_factor,
        }
        if self.controllers:
            out["stations"] = {
                station: controller.summary()
                for station, controller in sorted(self.controllers.items())
            }
        return out


#: Relative deadline per priority class, as multiples of the configured
#: ``deadline_s``: latency-critical keeps the full SLO, standard gets 3x
#: slack, batch has no deadline at all (throughput-only traffic).
CLASS_DEADLINE_SCALE = {"latency": 1.0, "standard": 3.0, "batch": math.inf}


class MultiTenantOverloadPolicy(OverloadPolicy):
    """Per-tenant overload control: the QoS PR's isolation layer.

    Replaces the base policy's *global* CoDel/brownout state with one
    controller set per tenant, so an aggressor tripping its own CoDel
    into the dropping state sheds only the aggressor's traffic — the
    victims' controllers never see the aggressor's queue sojourns.
    Deadlines become class-relative via :data:`CLASS_DEADLINE_SCALE`.

    `isolate=False` is the contrast arm: tenant tags are accepted but
    all tenants share one controller set, reproducing the pre-QoS global
    behaviour under the tenanted call shape.
    """

    def __init__(self, config: OverloadConfig, tenants, isolate: bool = True,
                 class_deadline_scale: dict = None):
        super().__init__(config)
        self.tenant_names = sorted(tenants)
        self.isolate = isolate
        self.class_deadline_scale = dict(class_deadline_scale
                                         or CLASS_DEADLINE_SCALE)
        self._tenant_controllers = {}
        self._brownouts = {}  # tenant -> times brownout() returned True
        if config.admission == "codel" and isolate:
            target = config.resolved_target_s()
            interval = config.resolved_interval_s()
            for tenant in self.tenant_names:
                self._tenant_controllers[tenant] = {
                    station: CoDelController(target, interval)
                    for station in self.STATIONS
                }

    def _controllers_for(self, tenant: str) -> dict:
        """`tenant`'s controller set; the shared set when not isolating
        or for untagged/unknown tenants (e.g. replication traffic)."""
        if tenant is not None:
            per_tenant = self._tenant_controllers.get(tenant)
            if per_tenant is not None:
                return per_tenant
        return self.controllers

    # -- class deadlines ---------------------------------------------------------

    def deadline_for(self, arrive_s: float, klass: str = None) -> float:
        """Class-relative absolute deadline (batch: none at all)."""
        if self.config.deadline_s is None:
            return math.inf
        scale = self.class_deadline_scale.get(klass, 1.0)
        if math.isinf(scale):
            return math.inf
        return arrive_s + self.config.deadline_s * scale

    # -- per-tenant admission + sojourn feed --------------------------------------

    def observe(self, station: str, now_s: float, sojourn_s: float,
                tenant: str = None) -> None:
        """Feed a station dequeue's wait to `tenant`'s own controller."""
        controller = self._controllers_for(tenant).get(station)
        if controller is not None:
            controller.observe(now_s, sojourn_s)

    def admit(self, now_s: float, tenant: str = None) -> bool:
        """Ingress decision against `tenant`'s controllers only — an
        aggressor in CoDel's dropping state sheds nobody else's work."""
        controllers = self._controllers_for(tenant)
        for station in self.STATIONS:
            controller = controllers.get(station)
            if controller is not None and controller.should_shed(now_s):
                return False
        return True

    # -- per-tenant brownout -------------------------------------------------------

    def brownout(self, now_s: float, tenant: str = None) -> bool:
        """Per-tenant degrade decision, counted per tenant for the
        degraded-mode quality accounting."""
        if self.config.brownout_factor >= 1.0:
            return False
        controllers = self._controllers_for(tenant)
        if not controllers:
            return False
        threshold = self.config.brownout_threshold_s
        if threshold is None:
            threshold = self.config.resolved_target_s()
        degraded = any(controller.ewma_sojourn_s > threshold
                       for controller in controllers.values())
        if degraded and tenant is not None:
            self._brownouts[tenant] = self._brownouts.get(tenant, 0) + 1
        return degraded

    # -- reporting ----------------------------------------------------------------

    def summary(self) -> dict:
        """Global snapshot plus per-tenant controller/brownout state."""
        out = super().summary()
        out["isolate"] = self.isolate
        out["class_deadline_scale"] = {
            klass: (None if math.isinf(scale) else scale)
            for klass, scale in sorted(self.class_deadline_scale.items())
        }
        if self._tenant_controllers:
            out["tenants"] = {
                tenant: {
                    station: controller.summary()
                    for station, controller in sorted(controllers.items())
                }
                for tenant, controllers in sorted(self._tenant_controllers.items())
            }
        if self._brownouts:
            out["brownouts"] = dict(sorted(self._brownouts.items()))
        return out
