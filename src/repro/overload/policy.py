"""Overload-control configuration and the per-run policy object.

One :class:`OverloadPolicy` instance is threaded through a fleet run and
owns the four mechanisms of the overload PR:

* **deadlines** — :meth:`deadline_for` stamps every request with an
  absolute deadline at admission; stations consult
  :attr:`OverloadConfig.shed_expired` to decide whether expired work is
  shed on dequeue (the fleet does the shedding, the policy the bookkeeping);
* **admission control** — per-station :class:`~repro.overload.codel.
  CoDelController` instances fed by :meth:`observe`; :meth:`admit`
  rejects an arriving request when any station's controller is in its
  dropping state and due for a drop;
* **brownout** — when the smoothed sojourn of any station exceeds the
  brownout threshold, :meth:`brownout` tells the fleet to degrade the
  request (scale its DSA stage by ``brownout_factor`` — the "drop the
  compression level" move) instead of dropping it;
* **bounded queues** — the depth limits live here
  (``cpu_queue_limit`` / ``dsa_queue_limit``); the fleet enforces them
  and the scheduler re-routes around full stations.

Everything is deterministic: no RNG, no wall clock; all state advances
only on ``observe``/``admit`` calls driven by the seeded simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.overload.codel import CoDelController


@dataclass
class OverloadConfig:
    """Knobs for one run's overload control (all optional, all off by default)."""

    #: Relative deadline applied to every request (None: no deadline).
    deadline_s: float = None
    #: Shed expired work at station dequeues (False: deadlines are only
    #: *measured* — the "control off" curve of the sweep).
    shed_expired: bool = True
    #: Ingress admission controller: "codel" or "none".
    admission: str = "none"
    #: CoDel target sojourn; None derives deadline_s / 5.
    codel_target_s: float = None
    #: CoDel interval; None derives 4 x target.
    codel_interval_s: float = None
    #: Per-channel DSA queue depth limit (None: unbounded).
    dsa_queue_limit: int = None
    #: Per-server CPU worker queue depth limit (None: unbounded).
    cpu_queue_limit: int = None
    #: DSA-stage service multiplier under brownout (1.0: brownout disabled).
    brownout_factor: float = 1.0
    #: Smoothed-sojourn threshold that triggers brownout; None derives
    #: the CoDel target.
    brownout_threshold_s: float = None

    def __post_init__(self):
        if self.admission not in ("none", "codel"):
            raise ValueError("admission must be 'none' or 'codel'")
        if not 0.0 < self.brownout_factor <= 1.0:
            raise ValueError("brownout_factor must be in (0, 1]")
        if self.admission == "codel" and self.deadline_s is None \
                and self.codel_target_s is None:
            raise ValueError("codel admission needs deadline_s or codel_target_s")

    @property
    def enabled(self) -> bool:
        """Whether any overload mechanism (even measurement-only) is on."""
        return (self.deadline_s is not None or self.admission != "none"
                or self.dsa_queue_limit is not None
                or self.cpu_queue_limit is not None
                or self.brownout_factor < 1.0)

    @property
    def bounded(self) -> bool:
        return self.dsa_queue_limit is not None or self.cpu_queue_limit is not None

    def resolved_target_s(self) -> float:
        """CoDel target sojourn: explicit knob, else deadline_s / 5."""
        if self.codel_target_s is not None:
            return self.codel_target_s
        return self.deadline_s / 5.0

    def resolved_interval_s(self) -> float:
        """CoDel interval: explicit knob, else 4x the resolved target."""
        if self.codel_interval_s is not None:
            return self.codel_interval_s
        return 4.0 * self.resolved_target_s()


class OverloadPolicy:
    """Run-time state for one fleet's overload control."""

    #: Station names fed by the fleet, in deterministic evaluation order.
    STATIONS = ("cpu", "dsa")

    def __init__(self, config: OverloadConfig):
        self.config = config
        self.controllers = {}
        if config.admission == "codel":
            target = config.resolved_target_s()
            interval = config.resolved_interval_s()
            self.controllers = {
                station: CoDelController(target, interval)
                for station in self.STATIONS
            }

    # -- deadlines --------------------------------------------------------------

    def deadline_for(self, arrive_s: float) -> float:
        """Absolute deadline for a request arriving at `arrive_s`."""
        if self.config.deadline_s is None:
            return math.inf
        return arrive_s + self.config.deadline_s

    def expired(self, now_s: float, deadline_s: float) -> bool:
        """Whether expired work should be shed at `now_s` (dequeue time)."""
        return self.config.shed_expired and now_s >= deadline_s

    # -- admission + sojourn feed -----------------------------------------------

    def observe(self, station: str, now_s: float, sojourn_s: float) -> None:
        """Feed one station dequeue's queueing wait to its controller."""
        controller = self.controllers.get(station)
        if controller is not None:
            controller.observe(now_s, sojourn_s)

    def admit(self, now_s: float) -> bool:
        """Ingress decision for a request arriving now (False: reject)."""
        for station in self.STATIONS:
            controller = self.controllers.get(station)
            if controller is not None and controller.should_shed(now_s):
                return False
        return True

    # -- brownout ---------------------------------------------------------------

    def brownout(self, now_s: float) -> bool:
        """Whether arriving work should be served degraded instead of shed."""
        if self.config.brownout_factor >= 1.0 or not self.controllers:
            return False
        threshold = self.config.brownout_threshold_s
        if threshold is None:
            threshold = self.config.resolved_target_s()
        return any(controller.ewma_sojourn_s > threshold
                   for controller in self.controllers.values())

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict:
        """Deterministic JSON-ready snapshot: config plus controller state."""
        out = {
            "deadline_s": self.config.deadline_s,
            "shed_expired": self.config.shed_expired,
            "admission": self.config.admission,
            "dsa_queue_limit": self.config.dsa_queue_limit,
            "cpu_queue_limit": self.config.cpu_queue_limit,
            "brownout_factor": self.config.brownout_factor,
        }
        if self.controllers:
            out["stations"] = {
                station: controller.summary()
                for station, controller in sorted(self.controllers.items())
            }
        return out
