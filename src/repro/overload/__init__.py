"""Overload control: deadlines, admission, retry budgets, backpressure.

The component-failure layer (``repro.faults``) protects the stack from
things that *break*; this package protects it from too much of a good
thing — offered load past capacity.  Four mechanisms, threaded through
the request path end to end (see DESIGN.md, "Overload control"):

* **deadline propagation** — every request carries an absolute deadline;
  stations shed expired work on dequeue instead of serving it;
* **admission control** — per-station CoDel controllers at fleet ingress
  (:mod:`repro.overload.codel`) shed or brown out arriving work when
  sojourn times stand above target;
* **bounded queues + backpressure** — depth-limited station queues; full
  queues push back to the scheduler, which re-routes or rejects;
* **retry budgets** — shared token buckets (:mod:`repro.overload.retry`)
  cap aggregate retry traffic so retry storms cannot amplify overload.

:mod:`repro.overload.sweep` drives the goodput-vs-offered-load sweep
behind ``python -m repro overload`` and ``BENCH_overload.json``.
"""

from repro.overload.codel import CoDelController
from repro.overload.policy import OverloadConfig, OverloadPolicy
from repro.overload.retry import RetryBudget

__all__ = [
    "CoDelController",
    "OverloadConfig",
    "OverloadPolicy",
    "RetryBudget",
]
