"""HTTP/1.1 message builders and parsers for the functional server.

Minimal but real: the functional Nginx model parses these requests and
emits these responses byte-for-byte, so the end-to-end examples exercise a
genuine protocol path (request line, headers, keep-alive, content
encoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field

CRLF = b"\r\n"


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict = field(default_factory=dict)

    @property
    def accepts_deflate(self) -> bool:
        encodings = self.headers.get("accept-encoding", "")
        return "deflate" in encodings.lower()


@dataclass
class HttpResponse:
    status: int
    body: bytes
    headers: dict = field(default_factory=dict)

    REASONS = {200: "OK", 404: "Not Found", 500: "Internal Server Error"}

    def wire_bytes(self) -> bytes:
        """Serialise status line, headers, and body."""
        lines = [
            ("HTTP/1.1 %d %s" % (self.status, self.REASONS.get(self.status, "OK"))).encode()
        ]
        headers = dict(self.headers)
        headers.setdefault("content-length", str(len(self.body)))
        headers.setdefault("connection", "keep-alive")
        for name in sorted(headers):
            lines.append(("%s: %s" % (name, headers[name])).encode())
        return CRLF.join(lines) + CRLF + CRLF + self.body


def build_request(path: str, accept_deflate: bool = False, extra_headers: dict = None) -> bytes:
    """Serialise a GET request (what the wrk model sends)."""
    headers = {"host": "server", "connection": "keep-alive"}
    if accept_deflate:
        headers["accept-encoding"] = "deflate"
    if extra_headers:
        headers.update(extra_headers)
    lines = [("GET %s HTTP/1.1" % path).encode()]
    for name in sorted(headers):
        lines.append(("%s: %s" % (name, headers[name])).encode())
    return CRLF.join(lines) + CRLF + CRLF


def parse_request(data: bytes) -> HttpRequest:
    """Parse one serialised request."""
    head, _, _ = data.partition(CRLF + CRLF)
    lines = head.split(CRLF)
    try:
        method, path, version = lines[0].decode().split(" ")
    except ValueError:
        raise ValueError("malformed request line: %r" % lines[0])
    if not version.startswith("HTTP/1."):
        raise ValueError("unsupported HTTP version %s" % version)
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=method, path=path, headers=headers)


def parse_response(data: bytes) -> HttpResponse:
    """Parse one serialised response (test/loadgen side)."""
    head, _, body = data.partition(CRLF + CRLF)
    lines = head.split(CRLF)
    status = int(lines[0].decode().split(" ")[1])
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", len(body)))
    return HttpResponse(status=status, body=body[:length], headers=headers)
