"""Synthetic compression corpora.

Substitutes for the public corpora the paper's artifact downloads (e.g.
Calgary/Silesia-style text and web assets).  Each generator is seeded and
deterministic, with structure chosen to exercise a particular compressor
behaviour:

* ``HTML`` — tag-heavy markup with repeated boilerplate: high match density
  at short distances (the nginx workload of Figs. 11/12).
* ``TEXT`` — natural-language-like word soup from a Zipf-ish vocabulary:
  moderate matches, Huffman-friendly symbol skew.
* ``JSON`` — API-response-like structures: repetitive keys, numeric noise.
* ``LOG`` — timestamped server-log lines: near-identical line prefixes.
* ``RANDOM`` — incompressible; exercises stored-block and DSA-overflow
  fallbacks.
"""

from __future__ import annotations

import enum
import random
import zlib


class CorpusKind(enum.Enum):
    """Synthetic corpus families with distinct compressibility."""

    HTML = "html"
    TEXT = "text"
    JSON = "json"
    LOG = "log"
    RANDOM = "random"


_WORDS = (
    "memory network protocol accelerator cache layer transport offload "
    "buffer device channel record packet stream server request response "
    "throughput latency bandwidth datacenter hardware software kernel "
    "socket cipher compress encrypt payload header segment page line"
).split()

_TAGS = ["div", "span", "p", "a", "li", "ul", "section", "article", "h2", "td"]


def _html(rng: random.Random, size: int) -> bytes:
    out = bytearray(b"<!DOCTYPE html><html><head><title>SmartDIMM</title></head><body>")
    while len(out) < size:
        tag = rng.choice(_TAGS)
        cls = rng.choice(["row", "col", "nav", "hero", "card", "footer"])
        words = " ".join(rng.choice(_WORDS) for _ in range(rng.randint(3, 12)))
        out += ('<%s class="%s">%s</%s>' % (tag, cls, words, tag)).encode()
    out += b"</body></html>"
    return bytes(out[:size])


def _text(rng: random.Random, size: int) -> bytes:
    out = bytearray()
    while len(out) < size:
        sentence = " ".join(rng.choice(_WORDS) for _ in range(rng.randint(6, 14)))
        out += sentence.capitalize().encode() + b". "
        if rng.random() < 0.08:
            out += b"\n\n"
    return bytes(out[:size])


def _json(rng: random.Random, size: int) -> bytes:
    out = bytearray(b'{"items":[')
    first = True
    while len(out) < size:
        if not first:
            out += b","
        first = False
        out += (
            '{"id":%d,"name":"%s","score":%.3f,"tags":["%s","%s"],"active":%s}'
            % (
                rng.randint(1, 10_000_000),
                rng.choice(_WORDS),
                rng.random(),
                rng.choice(_WORDS),
                rng.choice(_WORDS),
                rng.choice(["true", "false"]),
            )
        ).encode()
    out += b"]}"
    return bytes(out[:size])


def _log(rng: random.Random, size: int) -> bytes:
    out = bytearray()
    second = 0
    while len(out) < size:
        second += rng.randint(0, 2)
        out += (
            "2026-07-%02d %02d:%02d:%02d INFO worker[%d] served /%s/%d in %dus\n"
            % (
                1 + second // 86400,
                (second // 3600) % 24,
                (second // 60) % 60,
                second % 60,
                rng.randint(0, 9),
                rng.choice(_WORDS),
                rng.randint(1, 9999),
                rng.randint(40, 900),
            )
        ).encode()
    return bytes(out[:size])


def _random(rng: random.Random, size: int) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(size))


_GENERATORS = {
    CorpusKind.HTML: _html,
    CorpusKind.TEXT: _text,
    CorpusKind.JSON: _json,
    CorpusKind.LOG: _log,
    CorpusKind.RANDOM: _random,
}


def generate_corpus(kind: CorpusKind, size: int, seed: int = 0) -> bytes:
    """Generate `size` bytes of deterministic corpus of the given kind."""
    if size < 0:
        raise ValueError("size must be non-negative")
    # crc32, not hash(): str hashes are salted per process, and corpus
    # bytes feed measured DEFLATE ratios and thence simulated route costs
    # — a salted seed here breaks cross-process byte-identical reports.
    rng = random.Random((zlib.crc32(kind.value.encode()) & 0xFFFF) * 31 + seed)
    return _GENERATORS[kind](rng, size)
