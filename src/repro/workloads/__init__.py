"""Workload generation: synthetic web content and HTTP messages.

The paper's artifact uses public web servers and compression corpora; with
no network access we generate synthetic corpora with controllable structure
(match density, entropy) that exercise the same compressor/cipher code
paths, plus HTTP/1.1 request and response builders for the functional
server.
"""

from repro.workloads.corpus import CorpusKind, generate_corpus
from repro.workloads.http import HttpRequest, HttpResponse, build_request, parse_request

__all__ = [
    "CorpusKind",
    "generate_corpus",
    "HttpRequest",
    "HttpResponse",
    "build_request",
    "parse_request",
]
