"""Multi-tenant quality of service for the fleet.

Tenant identity rides every request from load generation to completion;
the fleet's cpu and channel stations arbitrate per-tenant deficit round
robin under strict-priority classes, overload control keeps per-tenant
CoDel/brownout state, and retry budgets are hierarchical so one tenant's
storm cannot drain the shared pool.  ``python -m repro qos`` runs the
noisy-neighbor sweep that gates all of it (BENCH_qos.json).
"""

from repro.qos.drr import (
    CLASS_RANK,
    DEFAULT_CLASS,
    PRIORITY_CLASSES,
    DrrArbiter,
    QosResource,
)
from repro.qos.tenants import QOS_MODES, QosPolicy, TenantSpec

__all__ = [
    "CLASS_RANK",
    "DEFAULT_CLASS",
    "PRIORITY_CLASSES",
    "QOS_MODES",
    "DrrArbiter",
    "QosPolicy",
    "QosResource",
    "TenantSpec",
]
