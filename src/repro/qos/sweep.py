"""The noisy-neighbor fairness sweep behind ``python -m repro qos``.

One aggressive tenant against two well-behaved ones, on a DEFLATE-16KB
SmartDIMM rack with the full QoS stack (DRR stations, strict-priority
classes, per-tenant CoDel/brownout, per-tenant queue bounds).  Sections,
written to ``BENCH_qos.json`` and gated by
``benchmarks/perf/check_regression.py``:

* **isolated** — each tenant alone at exactly the offered rate it will
  use in the shared runs: its no-interference baseline goodput.
* **attack** — all tenants together, the aggressor at
  :data:`AGGRESSOR_FACTOR` x its fair share.  The fairness gate: every
  victim keeps >= 85% of its isolated goodput while the aggressor is
  capped near its fair share of capacity.
* **attack_fifo** — the contrast arm: same tenants, FIFO stations and
  shared (non-isolated) overload state.  Shows what the DRR/isolation
  machinery buys; not gated, just reported.
* **attack_chaos** — the attack plus a ``node_down`` + ``channel_wedge``
  composition from :mod:`repro.cluster.chaos`: isolation must survive
  component failure too (victim goodput ratio gated against the same
  isolated baseline).
* **surge** — every tenant scaled so aggregate offered load is 2x fleet
  capacity: the latency class's p99 must stay under its deadline even
  though the rack as a whole is drowning (strict priority at work).
* **retry_isolation** — the hierarchical-budget micro: an aggressor
  tenant hammering a 100%-lossy QuickAssist through its child budget
  next to a victim with a mildly lossy card.  Gate: the victim's
  ``denied_parent == 0`` — the aggressor's storm never drained the
  shared pool out from under the victim.

Degraded-mode quality is reported per tenant: brownout serves DEFLATE at
a lower effort level, so the effective compression ratio worsens by
:data:`BROWNOUT_RATIO_PENALTY` on the browned-out fraction of traffic —
the "quality delta" the ISSUE's degraded-mode accounting asks for.

Determinism contract: identical seeds produce byte-identical
:func:`to_json` payloads (``tests/qos/test_qos_smoke.py``).
"""

from __future__ import annotations

import json

from repro.cluster.chaos import FaultWindow, FleetFaultInjector
from repro.cluster.loadgen import measured_deflate_ratio
from repro.cluster.scenario import ClusterScenario, run_scenario
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.overload.retry import RetryBudget
from repro.qos.tenants import TenantSpec
from repro.workloads.corpus import CorpusKind

#: Aggressor offered load as a multiple of its fair share of capacity.
AGGRESSOR_FACTOR = 3.0

#: Well-behaved tenants' offered load as a multiple of their fair share.
VICTIM_FACTOR = 0.8

#: Fraction of fair-share capacity the aggressor may exceed before the
#: gate calls the cap broken (DRR work-conservation legitimately hands
#: idle victims' slack to the aggressor, so "near fair share" is judged
#: against what the victims left on the table, plus this tolerance).
AGGRESSOR_CAP_TOLERANCE = 1.25

#: Compressed/original ratio multiplier for browned-out DEFLATE service
#: (reduced match effort, same fixed-Huffman banked matcher).
BROWNOUT_RATIO_PENALTY = 1.15

#: Latency-class deadline as a multiple of one unloaded end-to-end
#: service time at the sweep's message size.
DEADLINE_SERVICE_MULTIPLE = 10.0

#: The rack and workload every section shares.
RACK = {
    "servers": 2, "channels": 4, "threads": 8,
    "ulp": "deflate", "placement": "smartdimm", "message_bytes": 16384,
    "mode": "open", "arrival": "poisson",
}

#: Overload-control knobs layered under the QoS policy.
CONTROL = {
    "shed_expired": True,
    "admission": "codel",
    "dsa_queue_limit": 16,
    "cpu_queue_limit": 64,
    "brownout_factor": 0.85,
}


def _probe() -> ClusterScenario:
    """A rate-free scenario used only for capacity/deadline derivation."""
    return ClusterScenario(duration_s=0.02, warmup_s=0.005, **RACK)


def fleet_capacity_rps() -> float:
    """The analytic fixed-point capacity of the sweep's rack."""
    probe = _probe()
    return probe.build_profile().model_metrics.rps * probe.servers


def derive_deadline_s() -> float:
    """~10x the unloaded end-to-end service time of one 16 KB request."""
    route = _probe().build_profile().route(RACK["message_bytes"])
    service = (route.cpu_seconds + route.mem_seconds + route.dsa_seconds
               + route.link_seconds)
    return DEADLINE_SERVICE_MULTIPLE * service


def tenant_rates(capacity: float) -> dict:
    """Absolute offered rate per tenant (rps).

    Computed against the *shared-run* fair shares (three equal-weight
    tenants -> 1/3 each) and passed to every section as absolute
    ``rate_rps`` so the isolated baselines drive the exact same load the
    shared runs do.
    """
    share = capacity / 3.0
    return {
        "victim": VICTIM_FACTOR * share,
        "steady": VICTIM_FACTOR * share,
        "aggressor": AGGRESSOR_FACTOR * share,
    }


def make_tenants(rates: dict, scale: float = 1.0) -> list:
    """The sweep's three tenants at `scale` x their section rates."""
    return [
        TenantSpec("victim", klass="latency", weight=1.0,
                   rate_rps=scale * rates["victim"]),
        TenantSpec("steady", klass="standard", weight=1.0,
                   rate_rps=scale * rates["steady"]),
        TenantSpec("aggressor", klass="batch", weight=1.0,
                   rate_rps=scale * rates["aggressor"], queue_limit=8),
    ]


def qos_scenario(tenants, seed: int, duration_s: float, warmup_s: float,
                 deadline_s: float, mode: str = "drr",
                 isolate: bool = True) -> ClusterScenario:
    """One section's scenario: the shared rack plus the given tenant set."""
    return ClusterScenario(
        duration_s=duration_s, warmup_s=warmup_s, seed=seed,
        deadline_s=deadline_s, tenants=tenants,
        qos_mode=mode, qos_isolate=isolate,
        **RACK, **CONTROL,
    )


def _tenant_point(report, name: str) -> dict:
    """One tenant's gate-relevant numbers from a run's qos report."""
    stats = report.qos["tenants"][name]
    base_ratio = measured_deflate_ratio(CorpusKind.HTML)
    brownout_fraction = stats["brownout_fraction"]
    effective_ratio = base_ratio * (
        1.0 + brownout_fraction * (BROWNOUT_RATIO_PENALTY - 1.0))
    return {
        "goodput_rps": stats["goodput_rps"],
        "completed": stats["completed"],
        "submitted": stats["submitted"],
        "deadline_hit_rate": stats["deadline_hit_rate"],
        "rejected": stats["rejected"],
        "shed": stats["shed"],
        "latency_p50_us": stats["latency_p50_us"],
        "latency_p99_us": stats["latency_p99_us"],
        "brownout_fraction": brownout_fraction,
        # Degraded-mode quality: the compression ratio the tenant's
        # traffic actually achieved, brownout-weighted (higher = worse).
        "effective_compression_ratio": effective_ratio,
        "compression_ratio_delta": effective_ratio - base_ratio,
    }


def _section(report) -> dict:
    """A full section payload: per-tenant points plus class breakdowns."""
    return {
        "tenants": {
            name: _tenant_point(report, name)
            for name in sorted(report.qos["tenants"])
        },
        "classes": report.qos["classes"],
        "arbiter_served_seconds": report.qos["arbiter_served_seconds"],
        "rps": report.rps,
        "p99_s": report.latency["p99"],
    }


def fairness_durations(quick: bool) -> tuple:
    """(duration_s, warmup_s) for the full vs quick fairness window."""
    return (0.008, 0.002) if quick else (0.02, 0.005)


def run_isolated_point(name: str, seed: int, duration_s: float,
                       warmup_s: float) -> dict:
    """One tenant alone at its shared-run rate: its isolation baseline."""
    capacity = fleet_capacity_rps()
    deadline_s = derive_deadline_s()
    spec = next(t for t in make_tenants(tenant_rates(capacity))
                if t.name == name)
    solo = qos_scenario([spec], seed, duration_s, warmup_s, deadline_s)
    return _tenant_point(run_scenario(solo), name)


def run_attack_point(seed: int, duration_s: float, warmup_s: float) -> dict:
    """All tenants together under the full QoS stack."""
    capacity = fleet_capacity_rps()
    tenants = make_tenants(tenant_rates(capacity))
    return _section(run_scenario(qos_scenario(
        tenants, seed, duration_s, warmup_s, derive_deadline_s())))


def run_fifo_point(seed: int, duration_s: float, warmup_s: float) -> dict:
    """The contrast arm: FIFO stations, shared overload state."""
    capacity = fleet_capacity_rps()
    tenants = make_tenants(tenant_rates(capacity))
    return _section(run_scenario(qos_scenario(
        tenants, seed, duration_s, warmup_s, derive_deadline_s(),
        mode="fifo", isolate=False)))


def run_chaos_point(seed: int, duration_s: float, warmup_s: float) -> dict:
    """The attack plus node_down + channel_wedge windows."""
    capacity = fleet_capacity_rps()
    tenants = make_tenants(tenant_rates(capacity))
    window = duration_s - warmup_s
    injector = FleetFaultInjector([
        FaultWindow(kind="node_down", server=0,
                    start_s=warmup_s + 0.3 * window,
                    duration_s=0.2 * window),
        FaultWindow(kind="channel_wedge", server=1, channel=0,
                    start_s=warmup_s + 0.6 * window,
                    duration_s=0.2 * window),
    ])
    chaos_report = run_scenario(
        qos_scenario(tenants, seed, duration_s, warmup_s,
                     derive_deadline_s()),
        fault_injector=injector)
    chaos = _section(chaos_report)
    chaos["chaos"] = {
        "availability": chaos_report.chaos["availability"],
        "windows": len(chaos_report.chaos["windows"]),
    }
    return chaos


def run_surge_point(seed: int, duration_s: float, warmup_s: float) -> dict:
    """Everyone scaled so aggregate offered load is 2x fleet capacity."""
    capacity = fleet_capacity_rps()
    rates = tenant_rates(capacity)
    surge_scale = 2.0 * capacity / sum(rates.values())
    return _section(run_scenario(qos_scenario(
        make_tenants(rates, scale=surge_scale), seed,
        duration_s, warmup_s, derive_deadline_s())))


def fairness_rollup(isolated: dict, attack: dict, fifo: dict, chaos: dict,
                    surge: dict) -> dict:
    """Assemble the fairness payload (sections + gate summary)."""
    capacity = fleet_capacity_rps()
    deadline_s = derive_deadline_s()
    rates = tenant_rates(capacity)
    fair_share_rps = capacity / 3.0
    victim_ratio = (
        attack["tenants"]["victim"]["goodput_rps"]
        / isolated["victim"]["goodput_rps"]
        if isolated["victim"]["goodput_rps"] else 0.0)
    steady_ratio = (
        attack["tenants"]["steady"]["goodput_rps"]
        / isolated["steady"]["goodput_rps"]
        if isolated["steady"]["goodput_rps"] else 0.0)
    chaos_ratio = (
        chaos["tenants"]["victim"]["goodput_rps"]
        / isolated["victim"]["goodput_rps"]
        if isolated["victim"]["goodput_rps"] else 0.0)
    # Work conservation hands the victims' unused share to the aggressor;
    # the cap is therefore fair share + the victims' leftover, padded by
    # the tolerance.
    victims_leftover_rps = max(
        0.0,
        2.0 * fair_share_rps
        - attack["tenants"]["victim"]["goodput_rps"]
        - attack["tenants"]["steady"]["goodput_rps"])
    aggressor_cap_rps = AGGRESSOR_CAP_TOLERANCE * (
        fair_share_rps + victims_leftover_rps)
    summary = {
        "capacity_rps": capacity,
        "deadline_s": deadline_s,
        "fair_share_rps": fair_share_rps,
        "offered_rates_rps": dict(sorted(rates.items())),
        "victim_goodput_ratio": victim_ratio,
        "steady_goodput_ratio": steady_ratio,
        "victim_goodput_ratio_chaos": chaos_ratio,
        "victim_goodput_ratio_fifo": (
            fifo["tenants"]["victim"]["goodput_rps"]
            / isolated["victim"]["goodput_rps"]
            if isolated["victim"]["goodput_rps"] else 0.0),
        "aggressor_goodput_rps": attack["tenants"]["aggressor"]["goodput_rps"],
        "aggressor_cap_rps": aggressor_cap_rps,
        "aggressor_capped": (
            attack["tenants"]["aggressor"]["goodput_rps"] <= aggressor_cap_rps),
        "surge_latency_p99_us": surge["tenants"]["victim"]["latency_p99_us"],
        "surge_latency_deadline_us": deadline_s * 1e6,
        "surge_latency_bounded": (
            surge["tenants"]["victim"]["latency_p99_us"] <= deadline_s * 1e6),
    }
    return {
        "isolated": isolated,
        "attack": attack,
        "attack_fifo": fifo,
        "attack_chaos": chaos,
        "surge": surge,
        "summary": summary,
    }


# -- hierarchical retry isolation (micro) --------------------------------------------


def _drive_child(child, seed: int, ops: int, probability: float) -> dict:
    """Drive one tenant's lossy QuickAssist through its child budget."""
    from repro.accel.quickassist import QuickAssist

    qat = QuickAssist(retry_budget=child)
    qat.attach_fault_plan(FaultPlan(seed=seed, specs=(
        FaultSpec(FaultSite.ACCEL_COMPLETION_DROP, probability=probability,
                  params={"max_retries": 8}),
    )))
    key, nonce, payload = bytes(range(16)), bytes(range(12)), bytes(4096)
    ok = failed = 0
    for _ in range(ops):
        try:
            qat.tls_encrypt(key, nonce, payload)
            ok += 1
        except Exception:
            failed += 1
    return {"ops": ops, "ok": ok, "failed": failed,
            "budget": child.summary()}


def run_retry_isolation(seed: int = 11, ops: int = 60) -> dict:
    """An aggressor's 100%-lossy retry storm next to a victim's 10% loss.

    Both tenants retry through per-tenant children of one shared
    :class:`~repro.overload.retry.RetryBudget`.  The aggressor's child
    drains (every drop retried, nothing refills); the victim's light
    losses keep succeeding — and the gate is that the victim is *never*
    denied because the parent pool was empty (``denied_parent == 0``).
    """
    parent = RetryBudget(capacity=40.0, refill_per_success=0.5, seed=seed)
    aggressor = parent.child("aggressor", capacity=10.0)
    victim = parent.child("victim", capacity=10.0)
    # The aggressor storms first — worst case for the victim.
    aggressor_out = _drive_child(aggressor, seed, ops, probability=1.0)
    victim_out = _drive_child(victim, seed + 1, ops, probability=0.1)
    return {
        "aggressor": aggressor_out,
        "victim": victim_out,
        "parent": {key: value for key, value in parent.summary().items()
                   if key != "children"},
        "victim_denied_parent": victim_out["budget"]["denied_parent"],
        "victim_isolated": victim_out["budget"]["denied_parent"] == 0,
    }


# -- experiment-matrix points --------------------------------------------------------

#: The three tenants the isolated baselines cover.
TENANT_NAMES = ("victim", "steady", "aggressor")


def matrix_points(seed: int, quick: bool) -> list:
    """Every instance label of this sweep's matrix target."""
    return (["isolated/%s" % name for name in TENANT_NAMES]
            + ["attack", "attack_fifo", "attack_chaos", "surge",
               "retry_isolation"])


def run_point(spec) -> dict:
    """Pure matrix entry: one :class:`~repro.exp.spec.RunSpec` -> result."""
    duration_s, warmup_s = fairness_durations(spec.quick)
    if spec.instance.startswith("isolated/"):
        return run_isolated_point(spec.instance.split("/", 1)[1], spec.seed,
                                  duration_s, warmup_s)
    section = {
        "attack": run_attack_point,
        "attack_fifo": run_fifo_point,
        "attack_chaos": run_chaos_point,
        "surge": run_surge_point,
    }.get(spec.instance)
    if section is not None:
        return section(spec.seed, duration_s, warmup_s)
    if spec.instance == "retry_isolation":
        return run_retry_isolation(spec.seed)
    raise ValueError("unknown qos instance %r" % spec.instance)


def rollup(results: dict, seed: int, quick: bool) -> dict:
    """Per-instance results -> the complete CLI/BENCH payload."""
    isolated = {name: results["isolated/%s" % name]
                for name in TENANT_NAMES}
    return {
        "seed": seed,
        "quick": quick,
        "fairness": fairness_rollup(
            isolated, results["attack"], results["attack_fifo"],
            results["attack_chaos"], results["surge"]),
        "retry_isolation": results["retry_isolation"],
    }


# -- the full report -----------------------------------------------------------------


def run_fairness(seed: int, duration_s: float, warmup_s: float) -> dict:
    """Isolated baselines, the attack, the FIFO contrast, and chaos."""
    isolated = {
        name: run_isolated_point(name, seed, duration_s, warmup_s)
        for name in TENANT_NAMES
    }
    return fairness_rollup(
        isolated,
        run_attack_point(seed, duration_s, warmup_s),
        run_fifo_point(seed, duration_s, warmup_s),
        run_chaos_point(seed, duration_s, warmup_s),
        run_surge_point(seed, duration_s, warmup_s))


def run_qos(seed: int = 11, quick: bool = False) -> dict:
    """The complete ``python -m repro qos`` payload.

    A thin serial wrapper over the same pure points the experiment-matrix
    harness fans out across cores.
    """
    from repro.exp.spec import RunSpec

    results = {
        instance: run_point(RunSpec.make("qos", instance, seed, quick=quick))
        for instance in matrix_points(seed, quick)
    }
    return rollup(results, seed, quick)


def to_json(report: dict) -> str:
    """The deterministic serialisation written to BENCH_qos.json."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def gate_failures(report: dict) -> list:
    """Why this report fails the fairness gate (empty = pass)."""
    summary = report["fairness"]["summary"]
    retry = report["retry_isolation"]
    failures = []
    if summary["victim_goodput_ratio"] < 0.85:
        failures.append(
            "victim goodput under attack is %.1f%% of isolated baseline "
            "(need >= 85%%)" % (100.0 * summary["victim_goodput_ratio"]))
    if summary["steady_goodput_ratio"] < 0.85:
        failures.append(
            "steady-tenant goodput under attack is %.1f%% of isolated "
            "baseline (need >= 85%%)"
            % (100.0 * summary["steady_goodput_ratio"]))
    if summary["victim_goodput_ratio_chaos"] < 0.85:
        failures.append(
            "victim goodput under attack+chaos is %.1f%% of isolated "
            "baseline (need >= 85%%)"
            % (100.0 * summary["victim_goodput_ratio_chaos"]))
    if not summary["aggressor_capped"]:
        failures.append(
            "aggressor goodput %.0f rps exceeds the %.0f rps cap "
            "(fair share + victims' leftover, +%.0f%% tolerance)"
            % (summary["aggressor_goodput_rps"], summary["aggressor_cap_rps"],
               100.0 * (AGGRESSOR_CAP_TOLERANCE - 1.0)))
    if not summary["surge_latency_bounded"]:
        failures.append(
            "latency-class p99 %.1fus exceeds its %.1fus deadline under "
            "2x aggregate load"
            % (summary["surge_latency_p99_us"],
               summary["surge_latency_deadline_us"]))
    if not retry["victim_isolated"]:
        failures.append(
            "victim denied %d retries because the shared pool was drained "
            "(cross-tenant budget exhaustion)" % retry["victim_denied_parent"])
    return failures


def render(report: dict) -> str:
    """Human-readable CLI summary."""
    fairness = report["fairness"]
    summary = fairness["summary"]
    lines = []
    lines.append(
        "qos sweep (seed %d%s): capacity %.0f rps, fair share %.0f rps, "
        "deadline %.0fus, aggressor %gx fair share"
        % (report["seed"], ", quick" if report["quick"] else "",
           summary["capacity_rps"], summary["fair_share_rps"],
           summary["deadline_s"] * 1e6, AGGRESSOR_FACTOR))
    lines.append("  %-10s %-10s %12s %12s %10s %8s" % (
        "section", "tenant", "goodput", "vs isolated", "p99", "hit rate"))
    for section in ("attack", "attack_fifo", "attack_chaos", "surge"):
        for name in ("victim", "steady", "aggressor"):
            point = fairness[section]["tenants"][name]
            baseline = fairness["isolated"][name]["goodput_rps"]
            ratio = point["goodput_rps"] / baseline if baseline else 0.0
            lines.append("  %-10s %-10s %12.0f %11.0f%% %9.1fus %7.0f%%" % (
                section, name, point["goodput_rps"], 100.0 * ratio,
                point["latency_p99_us"], 100.0 * point["deadline_hit_rate"]))
    lines.append(
        "  victim keeps %.0f%% isolated goodput under attack "
        "(%.0f%% with chaos, %.0f%% without QoS); aggressor %.0f rps vs "
        "%.0f rps cap"
        % (100.0 * summary["victim_goodput_ratio"],
           100.0 * summary["victim_goodput_ratio_chaos"],
           100.0 * summary["victim_goodput_ratio_fifo"],
           summary["aggressor_goodput_rps"], summary["aggressor_cap_rps"]))
    retry = report["retry_isolation"]
    lines.append(
        "retry isolation: aggressor child denied %d/%d, victim ok %d/%d "
        "with denied_parent=%d"
        % (retry["aggressor"]["budget"]["denied_child"]
           + retry["aggressor"]["budget"]["denied_parent"],
           retry["aggressor"]["ops"], retry["victim"]["ok"],
           retry["victim"]["ops"], retry["victim_denied_parent"]))
    failures = gate_failures(report)
    if failures:
        lines.append("GATE FAILURES:")
        lines.extend("  - " + failure for failure in failures)
    else:
        lines.append("fairness gate: PASS")
    return "\n".join(lines)
