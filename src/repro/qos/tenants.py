"""Tenant specifications and the fleet-level QoS policy.

A :class:`TenantSpec` declares one tenant's identity, priority class,
DRR weight, offered load, and per-tenant queue bound; a
:class:`QosPolicy` bundles the tenant set with the arbitration mode and
hands the fleet ready-made :class:`~repro.qos.drr.DrrArbiter` instances
(one per station — arbiters hold mutable deficit state, so they are
never shared between stations).

Offered load is declared either absolutely (``rate_rps``) or relative to
the tenant's *fair share* of fleet capacity (``load_factor``): a
well-behaved tenant runs at ``load_factor <= 1.0`` of its
weight-proportional slice, an aggressor at 2–3×.  The scenario runner
resolves shares against measured fleet capacity so tenant mixes stay
meaningful across hardware placements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qos.drr import CLASS_RANK, DrrArbiter

QOS_MODES = ("drr", "fifo")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's QoS contract and offered load.

    ``rate_rps`` (absolute) takes precedence over ``load_factor``
    (relative to the tenant's fair share of fleet capacity).
    ``connections > 0`` switches the tenant to closed-loop driving.
    ``queue_limit`` bounds this tenant's waiters per station (None:
    only the station-wide bound applies).
    """

    name: str
    klass: str = "standard"
    weight: float = 1.0
    rate_rps: float = None
    load_factor: float = 1.0
    connections: int = 0
    queue_limit: int = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.klass not in CLASS_RANK:
            raise ValueError("unknown priority class %r (have %s)"
                             % (self.klass, sorted(CLASS_RANK)))
        if self.weight <= 0.0:
            raise ValueError("tenant weight must be positive")
        if self.rate_rps is None and self.load_factor <= 0.0 and not self.connections:
            raise ValueError("tenant %r offers no load" % self.name)
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")


class QosPolicy:
    """The fleet's multi-tenant contract: who exists, their weights,
    per-tenant bounds, and how stations arbitrate.

    mode "drr" installs DRR+strict-priority stations; mode "fifo" keeps
    the kernel's FIFO stations while still tagging and accounting per
    tenant — the contrast arm that shows what isolation buys.
    """

    def __init__(self, tenants, mode: str = "drr", quantum_s: float = None):
        tenants = list(tenants)
        if not tenants:
            raise ValueError("QosPolicy needs at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError("duplicate tenant names: %s" % names)
        if mode not in QOS_MODES:
            raise ValueError("unknown qos mode %r (have %s)" % (mode, QOS_MODES))
        if quantum_s is not None and quantum_s <= 0.0:
            raise ValueError("quantum_s must be positive")
        self.specs = {spec.name: spec for spec in tenants}
        self.order = names
        self.mode = mode
        self.quantum_s = quantum_s

    @property
    def total_weight(self) -> float:
        return sum(spec.weight for spec in self.specs.values())

    def fair_share(self, tenant: str) -> float:
        """`tenant`'s weight-proportional fraction of fleet capacity."""
        return self.specs[tenant].weight / self.total_weight

    def weights(self) -> dict:
        """tenant name -> DRR weight, the arbiter's share map."""
        return {name: spec.weight for name, spec in self.specs.items()}

    def queue_limits(self) -> dict:
        """tenant name -> per-station depth bound (only bounded tenants)."""
        return {name: spec.queue_limit for name, spec in self.specs.items()
                if spec.queue_limit is not None}

    def make_arbiter(self, quantum_s: float) -> DrrArbiter:
        """A fresh per-station arbiter (explicit quantum overridden by
        the policy-wide ``quantum_s`` when one was configured)."""
        return DrrArbiter(
            weights=self.weights(),
            quantum_s=self.quantum_s if self.quantum_s is not None else quantum_s,
            tenant_queue_limits=self.queue_limits(),
        )

    def summary(self) -> dict:
        """Deterministic JSON-ready description of the contract."""
        return {
            "mode": self.mode,
            "tenants": {
                name: {
                    "klass": spec.klass,
                    "weight": spec.weight,
                    "fair_share": self.fair_share(name),
                    "queue_limit": spec.queue_limit,
                }
                for name, spec in sorted(self.specs.items())
            },
        }
