"""Deficit-round-robin arbitration under strict-priority classes.

The multi-tenant QoS PR replaces the fleet stations' single FIFO with this
arbiter: waiters are queued per ``(priority class, tenant)``, dequeues pick
the highest-priority class with any waiter (strict priority — a
latency-critical request never queues behind batch work), and *within* a
class, tenants are served deficit round robin (DRR): each visit tops a
tenant's deficit counter up by ``quantum * weight`` and the tenant may
serve queued work until the deficit no longer covers the head-of-line
request's *service cost in seconds*.  Costing in seconds (not requests)
is what makes the shares byte-fair when tenants mix message sizes — the
same reason :class:`~repro.cluster.sched.LeastLoadedScheduler` balances
backlog seconds rather than queue lengths.

The arbiter is deliberately dumb about time: it never reads the clock and
has no RNG.  All state advances on ``enqueue``/``dequeue`` calls driven by
the seeded simulation, so identically-seeded runs arbitrate identically
(the repo-wide byte-identical-output guarantee).

The round-robin ring idiom follows the migen ``RoundRobin`` core logic
(see ROADMAP): a rotating cursor over the requesting set, advanced past
the grant — here augmented with the deficit counters that make the grant
weighted and size-aware.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.kernel import Event, Resource

#: Priority classes, highest priority first.  Strict priority between
#: classes; DRR fairness between tenants inside one class.
PRIORITY_CLASSES = ("latency", "standard", "batch")

#: Class name -> rank (lower rank dequeues first).
CLASS_RANK = {name: rank for rank, name in enumerate(PRIORITY_CLASSES)}

#: The class assumed for untagged requests.
DEFAULT_CLASS = "standard"


class DrrArbiter:
    """Per-station queueing state: per-(class, tenant) deques + deficits.

    Parameters
    ----------
    weights:
        tenant name -> DRR weight.  Tenants absent from the map get
        weight 1.0 (so untagged traffic and late-registered tenants are
        served, just without a privileged share).
    quantum_s:
        Deficit replenished per round-robin visit, in service *seconds*,
        scaled by the tenant's weight.  Pick it near the typical request
        service time: much smaller only adds arbitration rounds, much
        larger makes the interleaving burstier (classic DRR latitude).
    tenant_queue_limits:
        tenant name -> max queued requests for that tenant at this
        station (the per-tenant bounded queue of the QoS PR).  Absent or
        None: unlimited.  Enforced advisorily via :meth:`tenant_full`,
        exactly like :attr:`~repro.cluster.kernel.Resource.max_queue`.
    """

    def __init__(self, weights=None, quantum_s: float = 1e-4,
                 tenant_queue_limits=None):
        if quantum_s <= 0.0:
            raise ValueError("quantum_s must be positive")
        self.weights = dict(weights or {})
        self.quantum_s = quantum_s
        self.tenant_queue_limits = dict(tenant_queue_limits or {})
        self.pending = 0
        self._queues = {}   # (rank, tenant) -> deque[(cost_s, grant)]
        self._rings = {}    # rank -> [tenant, ...] in arrival order
        self._cursor = {}   # rank -> ring index of the current visit
        self._deficit = {}  # (rank, tenant) -> remaining service seconds
        self._visited = {}  # (rank, tenant) -> topped up this visit?
        self._tenant_pending = {}  # tenant -> queued count across classes
        #: tenant -> requests granted by this arbiter (fairness telemetry).
        self.served = {}
        #: tenant -> service seconds granted (the byte-fair share signal).
        self.served_seconds = {}

    # -- admission-side probes ---------------------------------------------------

    def weight(self, tenant: str) -> float:
        """The tenant's DRR weight (1.0 when unregistered)."""
        return self.weights.get(tenant, 1.0)

    def tenant_depth(self, tenant: str) -> int:
        """Requests currently queued here by `tenant` (all classes)."""
        return self._tenant_pending.get(tenant, 0)

    def tenant_full(self, tenant: str) -> bool:
        """Whether `tenant`'s per-tenant depth limit is exhausted."""
        limit = self.tenant_queue_limits.get(tenant)
        return limit is not None and self.tenant_depth(tenant) >= limit

    # -- queue maintenance --------------------------------------------------------

    def enqueue(self, tenant: str, klass: str, cost_s: float, grant) -> None:
        """Queue one waiter; `cost_s` is its service time at this station."""
        rank = CLASS_RANK.get(klass, CLASS_RANK[DEFAULT_CLASS])
        key = (rank, tenant)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = deque()
            ring = self._rings.setdefault(rank, [])
            self._cursor.setdefault(rank, 0)
            ring.append(tenant)
            self._deficit.setdefault(key, 0.0)
            self._visited.setdefault(key, False)
        queue.append((max(cost_s, 0.0), grant))
        self.pending += 1
        self._tenant_pending[tenant] = self._tenant_pending.get(tenant, 0) + 1

    def dequeue(self):
        """The next grant under strict-priority DRR, or None when idle."""
        if self.pending == 0:
            return None
        for rank in sorted(self._rings):
            ring = self._rings[rank]
            if ring:
                return self._grant(rank, ring)
        return None  # unreachable while pending > 0; defensive

    def _grant(self, rank: int, ring: list):
        """One DRR selection round inside the class `rank`.

        Classic DRR, serialised one grant at a time: visit the cursor's
        tenant, top its deficit up once per visit, and serve while the
        deficit covers the head-of-line cost; otherwise end the visit and
        advance.  Deficits grow by ``quantum * weight`` every full ring
        rotation, so the loop always terminates at the tenant whose
        accumulated share first covers its head-of-line request.
        """
        while True:
            cursor = self._cursor[rank] % len(ring)
            self._cursor[rank] = cursor
            tenant = ring[cursor]
            key = (rank, tenant)
            if not self._visited[key]:
                self._deficit[key] += self.quantum_s * self.weight(tenant)
                self._visited[key] = True
            queue = self._queues[key]
            cost_s, grant = queue[0]
            if self._deficit[key] >= cost_s:
                queue.popleft()
                self.pending -= 1
                self._tenant_pending[tenant] -= 1
                self._deficit[key] -= cost_s
                self.served[tenant] = self.served.get(tenant, 0) + 1
                self.served_seconds[tenant] = (
                    self.served_seconds.get(tenant, 0.0) + cost_s)
                if not queue:
                    # Idle tenants forfeit their deficit (standard DRR:
                    # no banking credit while you have nothing queued).
                    del self._queues[key]
                    self._deficit[key] = 0.0
                    self._visited[key] = False
                    ring.pop(cursor)
                    if ring and cursor >= len(ring):
                        self._cursor[rank] = 0
                return grant
            # Visit over: the head costs more than this visit's share.
            self._visited[key] = False
            self._cursor[rank] = (cursor + 1) % len(ring)

    # -- reporting ----------------------------------------------------------------

    def summary(self) -> dict:
        """Deterministic JSON-ready grant accounting."""
        return {
            "quantum_s": self.quantum_s,
            "served": dict(sorted(self.served.items())),
            "served_seconds": dict(sorted(self.served_seconds.items())),
        }


class QosResource(Resource):
    """A :class:`~repro.cluster.kernel.Resource` whose wait queue is a
    :class:`DrrArbiter` instead of a FIFO deque.

    Drop-in at the fleet's cpu and channel stations: same busy-time
    integration, same advisory ``max_queue`` bound (now over the summed
    arbiter backlog), plus per-tenant depth bounds via :meth:`full_for`.
    ``acquire`` takes the request's tenant tag, class, and service cost —
    the three inputs DRR needs that a FIFO can ignore.
    """

    __slots__ = ("arbiter",)

    def __init__(self, sim, capacity: int = 1, name: str = "",
                 arbiter: DrrArbiter = None, timeline=None,
                 max_queue: int = None):
        super().__init__(sim, capacity, name, timeline, max_queue)
        self.arbiter = arbiter if arbiter is not None else DrrArbiter()

    def acquire(self, tenant: str = "", klass: str = DEFAULT_CLASS,
                cost_s: float = 0.0) -> Event:
        """Request a slot; queued under (tenant, klass) when all are busy."""
        grant = Event(self.sim)
        if self.busy < self.capacity:
            self._account()
            self.busy += 1
            grant.succeed()
        else:
            self.arbiter.enqueue(tenant, klass, cost_s, grant)
        return grant

    def release(self) -> None:
        """Free a slot, handing it to the arbiter's DRR selection."""
        grant = self.arbiter.dequeue()
        if grant is not None:
            grant.succeed()
        else:
            self._account()
            self.busy -= 1

    @property
    def queue_depth(self) -> int:
        return self.arbiter.pending

    @property
    def full(self) -> bool:
        """Whether the station-wide advisory bound is exhausted."""
        return self.max_queue is not None and self.arbiter.pending >= self.max_queue

    def full_for(self, tenant: str) -> bool:
        """Station-wide bound OR `tenant`'s per-tenant bound exhausted."""
        return self.full or self.arbiter.tenant_full(tenant)
