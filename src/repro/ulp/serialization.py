"""A protobuf-flavoured serialization ULP, from scratch.

The paper's introduction lists serialization among the datacenter-tax ULPs
("facilitating communication in heterogeneous software deployments via
serialization") and cites the on-chip/SmartNIC accelerators built for it;
SmartDIMM's discussion positions the architecture as extensible to further
ULP domains.  This module supplies the functional ground truth for that
extension:

* **Wire format** — tag-length-value with LEB128 varints and zigzag-encoded
  signed integers, structurally equivalent to protobuf's scalar subset:
  each field is ``(field_number << 3) | wire_kind`` followed by a varint or
  a length-delimited payload.
* **Flat format** — what a deserialization accelerator produces: fixed,
  8-byte-aligned ``(field, kind, length, payload)`` entries the CPU can
  consume with aligned loads and no varint decoding.  This mirrors the
  accelerator literature's "wire to in-memory representation" transform.

Deserialization consumes the wire stream byte-sequentially, so it is
incrementally computable in the paper's sense (Observation 4) the same way
deflate is: ordered, stateful, non-size-preserving.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FieldKind(enum.Enum):
    """Wire encodings: varint, zigzag varint, or length-delimited."""

    UINT = 0  # varint
    SINT = 1  # zigzag varint
    BYTES = 2  # length-delimited
    STRING = 3  # length-delimited UTF-8


@dataclass(frozen=True)
class FieldSpec:
    name: str
    kind: FieldKind


class Schema:
    """Field-number -> spec mapping (the message type definition)."""

    MAX_FIELD_NUMBER = (1 << 13) - 1

    def __init__(self, fields: dict):
        for number, spec in fields.items():
            if not 1 <= number <= self.MAX_FIELD_NUMBER:
                raise ValueError("field number %d out of range" % number)
            if not isinstance(spec, FieldSpec):
                raise TypeError("schema values must be FieldSpec")
        names = [spec.name for spec in fields.values()]
        if len(names) != len(set(names)):
            raise ValueError("duplicate field names in schema")
        self.fields = dict(fields)
        self._by_name = {spec.name: number for number, spec in fields.items()}

    def number_of(self, name: str) -> int:
        """Field number for a field name."""
        return self._by_name[name]

    def spec(self, number: int) -> FieldSpec:
        """Field spec for a field number."""
        return self.fields[number]


# -- varints ---------------------------------------------------------------------


def write_varint(value: int) -> bytes:
    """LEB128: 7 bits per byte, MSB marks continuation."""
    if value < 0:
        raise ValueError("varints are unsigned; zigzag-encode signed values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, offset: int) -> tuple:
    """Returns (value, next_offset); raises on truncation or overlength."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        if shift > 63:
            raise ValueError("varint exceeds 64 bits")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map signed to unsigned so small magnitudes stay small."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


# -- wire format ---------------------------------------------------------------------

_LENGTH_DELIMITED = (FieldKind.BYTES, FieldKind.STRING)


def serialize(record: dict, schema: Schema) -> bytes:
    """Encode a {name: value} record to wire bytes (fields in number order)."""
    out = bytearray()
    for number in sorted(schema.fields):
        spec = schema.spec(number)
        if spec.name not in record:
            continue
        value = record[spec.name]
        tag = (number << 3) | spec.kind.value
        out += write_varint(tag)
        if spec.kind is FieldKind.UINT:
            out += write_varint(value)
        elif spec.kind is FieldKind.SINT:
            out += write_varint(zigzag_encode(value))
        else:
            payload = value.encode() if spec.kind is FieldKind.STRING else bytes(value)
            out += write_varint(len(payload))
            out += payload
    return bytes(out)


def deserialize(data: bytes, schema: Schema) -> dict:
    """Decode wire bytes into a {name: value} record (unknown fields skipped)."""
    record = {}
    offset = 0
    while offset < len(data):
        tag, offset = read_varint(data, offset)
        number, kind_value = tag >> 3, tag & 0x7
        if kind_value > 3:
            raise ValueError("unknown wire kind %d" % kind_value)
        kind = FieldKind(kind_value)
        if kind in _LENGTH_DELIMITED:
            length, offset = read_varint(data, offset)
            payload = data[offset : offset + length]
            if len(payload) != length:
                raise ValueError("truncated length-delimited field")
            offset += length
        else:
            payload, offset = read_varint(data, offset)
        if number not in schema.fields:
            continue  # forward compatibility: skip unknown fields
        spec = schema.spec(number)
        if spec.kind.value != kind_value:
            raise ValueError(
                "field %d encoded as %s, schema says %s" % (number, kind, spec.kind)
            )
        if kind is FieldKind.UINT:
            record[spec.name] = payload
        elif kind is FieldKind.SINT:
            record[spec.name] = zigzag_decode(payload)
        elif kind is FieldKind.STRING:
            record[spec.name] = payload.decode()
        else:
            record[spec.name] = bytes(payload)
    return record


# -- flat format (the accelerator's output) ----------------------------------------------

_FLAT_HEADER = 8  # field u16 | kind u8 | pad u8 | length u32


def _align8(n: int) -> int:
    return (n + 7) & ~7


def flatten(data: bytes, schema: Schema) -> bytes:
    """Parse wire bytes into the aligned flat representation.

    This is the transform the deserialization DSA performs: after it, the
    CPU touches each field with one aligned load instead of walking
    varints.  Unknown fields are preserved (kind from the wire).
    """
    out = bytearray()
    offset = 0
    while offset < len(data):
        tag, offset = read_varint(data, offset)
        number, kind_value = tag >> 3, tag & 0x7
        if kind_value > 3:
            raise ValueError("unknown wire kind %d" % kind_value)
        kind = FieldKind(kind_value)
        if kind in _LENGTH_DELIMITED:
            length, offset = read_varint(data, offset)
            payload = data[offset : offset + length]
            if len(payload) != length:
                raise ValueError("truncated length-delimited field")
            offset += length
        else:
            value, offset = read_varint(data, offset)
            payload = value.to_bytes(8, "little")
        out += number.to_bytes(2, "little")
        out += bytes([kind_value, 0])
        out += len(payload).to_bytes(4, "little")
        out += payload
        out += bytes(_align8(len(payload)) - len(payload))
    return bytes(out)


def unflatten(flat: bytes, schema: Schema) -> dict:
    """Consume the flat representation back into a record (CPU side)."""
    record = {}
    offset = 0
    while offset < len(flat):
        if offset + _FLAT_HEADER > len(flat):
            raise ValueError("truncated flat entry header")
        number = int.from_bytes(flat[offset : offset + 2], "little")
        kind = FieldKind(flat[offset + 2])
        length = int.from_bytes(flat[offset + 4 : offset + 8], "little")
        payload = flat[offset + 8 : offset + 8 + length]
        if len(payload) != length:
            raise ValueError("truncated flat entry payload")
        offset += _FLAT_HEADER + _align8(length)
        if number not in schema.fields:
            continue
        spec = schema.spec(number)
        if spec.kind is FieldKind.UINT:
            record[spec.name] = int.from_bytes(payload, "little")
        elif spec.kind is FieldKind.SINT:
            record[spec.name] = zigzag_decode(int.from_bytes(payload, "little"))
        elif spec.kind is FieldKind.STRING:
            record[spec.name] = payload.decode()
        else:
            record[spec.name] = bytes(payload)
    return record
