"""Functional upper-layer protocol (ULP) implementations.

This subpackage implements, from scratch, the two ULPs the paper offloads to
SmartDIMM:

* AES-GCM authenticated encryption (:mod:`repro.ulp.aes`, :mod:`repro.ulp.gcm`)
  and the TLS 1.3 record layer built on top of it (:mod:`repro.ulp.tls`).
* DEFLATE compression/decompression (:mod:`repro.ulp.lz77`,
  :mod:`repro.ulp.huffman`, :mod:`repro.ulp.deflate`).

Everything here is *functional*: it operates on real bytes and round-trips.
Performance modelling lives elsewhere (:mod:`repro.cpu.costs` and the
simulation layers); these modules are the ground truth that the DSA models in
:mod:`repro.core.dsa` must agree with bit-for-bit.
"""

from repro.ulp.aes import AES
from repro.ulp.gcm import AESGCM, ghash
from repro.ulp.tls import TLSRecordLayer, TLSRecord
from repro.ulp.deflate import deflate_compress, deflate_decompress

__all__ = [
    "AES",
    "AESGCM",
    "ghash",
    "TLSRecordLayer",
    "TLSRecord",
    "deflate_compress",
    "deflate_decompress",
]
