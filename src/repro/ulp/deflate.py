"""DEFLATE compression and decompression (RFC 1951), from scratch.

The compressor supports all three block types — stored, fixed-Huffman, and
dynamic-Huffman — and picks the cheapest encoding for each block.  The
decompressor handles arbitrary conforming streams (it round-trips output from
CPython's zlib in raw mode, which the test suite uses as an oracle).

The CPU baseline compresses with dynamic Huffman and a deep hash-chain
matcher; the SmartDIMM deflate DSA (:mod:`repro.core.dsa.deflate_dsa`)
restricts the matcher and uses fixed-Huffman blocks for deterministic
latency, but both paths produce valid DEFLATE decoded by
:func:`deflate_decompress`.
"""

from __future__ import annotations

from repro.ulp.bitstream import BitReader, BitWriter
from repro.ulp.huffman import (
    CODE_LENGTH_ORDER,
    DISTANCE_BASE,
    DISTANCE_EXTRA,
    END_OF_BLOCK,
    LENGTH_BASE,
    LENGTH_EXTRA,
    HuffmanDecoder,
    HuffmanEncoder,
    distance_to_symbol,
    encode_code_lengths,
    fixed_distance_lengths,
    fixed_literal_lengths,
    length_to_symbol,
    package_merge_lengths,
)
from repro.ulp.lz77 import HashChainMatcher, Literal, Match

BLOCK_STORED = 0
BLOCK_FIXED = 1
BLOCK_DYNAMIC = 2

# Matcher effort per compression level, loosely mirroring zlib.
_LEVEL_PARAMS = {
    1: dict(max_chain=4, lazy=False),
    2: dict(max_chain=8, lazy=False),
    3: dict(max_chain=16, lazy=False),
    4: dict(max_chain=16, lazy=True),
    5: dict(max_chain=32, lazy=True),
    6: dict(max_chain=128, lazy=True),
    7: dict(max_chain=256, lazy=True),
    8: dict(max_chain=512, lazy=True),
    9: dict(max_chain=1024, lazy=True),
}


def _symbol_stream(tokens: list) -> list:
    """Expand LZ tokens into (lit/len symbol, extras, dist symbol, extras)."""
    stream = []
    for token in tokens:
        if isinstance(token, Literal):
            stream.append((token.value, 0, 0, None, 0, 0))
        else:
            lsym, lextra, lbits = length_to_symbol(token.length)
            dsym, dextra, dbits = distance_to_symbol(token.distance)
            stream.append((lsym, lextra, lbits, dsym, dextra, dbits))
    stream.append((END_OF_BLOCK, 0, 0, None, 0, 0))
    return stream


def _write_symbols(writer: BitWriter, stream: list, literal_encoder: HuffmanEncoder,
                   distance_encoder: HuffmanEncoder) -> None:
    for lsym, lextra, lbits, dsym, dextra, dbits in stream:
        code, length = literal_encoder.encode(lsym)
        writer.write_huffman_code(code, length)
        if lbits:
            writer.write_bits(lextra, lbits)
        if dsym is not None:
            code, length = distance_encoder.encode(dsym)
            writer.write_huffman_code(code, length)
            if dbits:
                writer.write_bits(dextra, dbits)


def _dynamic_block_cost(stream: list, literal_lengths: dict, distance_lengths: dict,
                        header_bits: int) -> int:
    bits = header_bits
    for lsym, _, lbits, dsym, _, dbits in stream:
        bits += literal_lengths[lsym] + lbits
        if dsym is not None:
            bits += distance_lengths[dsym] + dbits
    return bits


def _fixed_block_cost(stream: list) -> int:
    literal_lengths = fixed_literal_lengths()
    distance_lengths = fixed_distance_lengths()
    bits = 3
    for lsym, _, lbits, dsym, _, dbits in stream:
        bits += literal_lengths[lsym] + lbits
        if dsym is not None:
            bits += distance_lengths[dsym] + dbits
    return bits


def _build_dynamic_header(literal_lengths: dict, distance_lengths: dict) -> tuple:
    """Build the dynamic block header fields; returns
    (hlit, hdist, hclen, cl_encoder, cl_entries, header_bits)."""
    max_lit = max([s for s, L in literal_lengths.items() if L] + [END_OF_BLOCK])
    max_dist = max([s for s, L in distance_lengths.items() if L] + [0])
    hlit = max_lit + 1 - 257 if max_lit >= 257 else 0
    hdist = max_dist + 1 - 1
    lit_seq = [literal_lengths.get(s, 0) for s in range(257 + hlit)]
    dist_seq = [distance_lengths.get(s, 0) for s in range(hdist + 1)]
    cl_entries = encode_code_lengths(lit_seq + dist_seq)
    cl_freq = {}
    for symbol, _, _ in cl_entries:
        cl_freq[symbol] = cl_freq.get(symbol, 0) + 1
    cl_lengths = package_merge_lengths(cl_freq, limit=7)
    cl_encoder = HuffmanEncoder(cl_lengths)
    hclen = 4
    for index, symbol in enumerate(CODE_LENGTH_ORDER):
        if cl_lengths.get(symbol, 0):
            hclen = max(hclen, index + 1)
    header_bits = 3 + 5 + 5 + 4 + 3 * hclen
    for symbol, _, extra_bits in cl_entries:
        header_bits += cl_lengths.get(symbol, 0) + extra_bits
    return hlit, hdist, hclen, cl_encoder, cl_entries, header_bits


def deflate_compress(data: bytes, level: int = 6, window_size: int = 32768) -> bytes:
    """Compress `data` into a raw DEFLATE stream (single final block)."""
    if not 1 <= level <= 9:
        raise ValueError("compression level must be 1..9")
    writer = BitWriter()
    if not data:
        # Empty final fixed block: just the end-of-block symbol.
        writer.write_bits(1, 1)
        writer.write_bits(BLOCK_FIXED, 2)
        encoder = HuffmanEncoder(fixed_literal_lengths())
        code, length = encoder.encode(END_OF_BLOCK)
        writer.write_huffman_code(code, length)
        return writer.getvalue()

    matcher = HashChainMatcher(window_size=window_size, **_LEVEL_PARAMS[level])
    tokens = matcher.tokenize(data)
    stream = _symbol_stream(tokens)

    literal_freq = {}
    distance_freq = {}
    for lsym, _, _, dsym, _, _ in stream:
        literal_freq[lsym] = literal_freq.get(lsym, 0) + 1
        if dsym is not None:
            distance_freq[dsym] = distance_freq.get(dsym, 0) + 1
    literal_lengths = package_merge_lengths(literal_freq)
    distance_lengths = package_merge_lengths(distance_freq) if distance_freq else {0: 1}

    hlit, hdist, hclen, cl_encoder, cl_entries, header_bits = _build_dynamic_header(
        literal_lengths, distance_lengths
    )
    dynamic_bits = _dynamic_block_cost(stream, literal_lengths, distance_lengths, header_bits)
    fixed_bits = _fixed_block_cost(stream)
    stored_bits = 8 * (5 * ((len(data) + 65534) // 65535) + len(data)) + 3 + 7

    best = min(dynamic_bits, fixed_bits, stored_bits)
    if best == stored_bits:
        _write_stored_blocks(writer, data)
    elif best == fixed_bits:
        writer.write_bits(1, 1)
        writer.write_bits(BLOCK_FIXED, 2)
        _write_symbols(
            writer,
            stream,
            HuffmanEncoder(fixed_literal_lengths()),
            HuffmanEncoder(fixed_distance_lengths()),
        )
    else:
        writer.write_bits(1, 1)
        writer.write_bits(BLOCK_DYNAMIC, 2)
        writer.write_bits(hlit, 5)
        writer.write_bits(hdist, 5)
        writer.write_bits(hclen - 4, 4)
        for symbol in CODE_LENGTH_ORDER[:hclen]:
            writer.write_bits(cl_encoder.lengths.get(symbol, 0), 3)
        for symbol, extra_value, extra_bits in cl_entries:
            code, length = cl_encoder.encode(symbol)
            writer.write_huffman_code(code, length)
            if extra_bits:
                writer.write_bits(extra_value, extra_bits)
        _write_symbols(
            writer,
            stream,
            HuffmanEncoder(literal_lengths),
            HuffmanEncoder(distance_lengths),
        )
    return writer.getvalue()


def _write_stored_blocks(writer: BitWriter, data: bytes) -> None:
    offset = 0
    while True:
        chunk = data[offset : offset + 65535]
        offset += len(chunk)
        final = offset >= len(data)
        writer.write_bits(1 if final else 0, 1)
        writer.write_bits(BLOCK_STORED, 2)
        writer.align_to_byte()
        writer.write_bits(len(chunk), 16)
        writer.write_bits(len(chunk) ^ 0xFFFF, 16)
        writer.write_bytes(chunk)
        if final:
            break


def write_fixed_block(writer: BitWriter, tokens: list, final: bool = True) -> None:
    """Emit one fixed-Huffman block from pre-tokenized LZ symbols.

    Used by the deflate DSA, whose hardware pipeline always selects the fixed
    code for deterministic latency (Sec. V-B).
    """
    writer.write_bits(1 if final else 0, 1)
    writer.write_bits(BLOCK_FIXED, 2)
    _write_symbols(
        writer,
        _symbol_stream(tokens),
        HuffmanEncoder(fixed_literal_lengths()),
        HuffmanEncoder(fixed_distance_lengths()),
    )


def deflate_decompress(data: bytes, max_output: int = 1 << 30) -> bytes:
    """Decompress a raw DEFLATE stream."""
    reader = BitReader(data)
    out = bytearray()
    while True:
        final = reader.read_bit()
        block_type = reader.read_bits(2)
        if block_type == BLOCK_STORED:
            reader.align_to_byte()
            length = reader.read_bits(16)
            nlength = reader.read_bits(16)
            if length != (nlength ^ 0xFFFF):
                raise ValueError("stored block length check failed")
            out.extend(reader.read_bytes(length))
        elif block_type in (BLOCK_FIXED, BLOCK_DYNAMIC):
            if block_type == BLOCK_FIXED:
                literal_decoder = HuffmanDecoder(fixed_literal_lengths())
                distance_decoder = HuffmanDecoder(fixed_distance_lengths())
            else:
                literal_decoder, distance_decoder = _read_dynamic_header(reader)
            _inflate_block(reader, out, literal_decoder, distance_decoder, max_output)
        else:
            raise ValueError("reserved block type 3")
        if len(out) > max_output:
            raise ValueError("output exceeds max_output")
        if final:
            break
    return bytes(out)


def _read_dynamic_header(reader: BitReader) -> tuple:
    hlit = reader.read_bits(5)
    hdist = reader.read_bits(5)
    hclen = reader.read_bits(4) + 4
    cl_lengths = {}
    for symbol in CODE_LENGTH_ORDER[:hclen]:
        length = reader.read_bits(3)
        if length:
            cl_lengths[symbol] = length
    cl_decoder = HuffmanDecoder(cl_lengths)
    total = 257 + hlit + 1 + hdist
    lengths = []
    while len(lengths) < total:
        symbol = cl_decoder.decode(reader)
        if symbol < 16:
            lengths.append(symbol)
        elif symbol == 16:
            if not lengths:
                raise ValueError("repeat with no previous code length")
            lengths.extend([lengths[-1]] * (3 + reader.read_bits(2)))
        elif symbol == 17:
            lengths.extend([0] * (3 + reader.read_bits(3)))
        else:
            lengths.extend([0] * (11 + reader.read_bits(7)))
    if len(lengths) != total:
        raise ValueError("code length overrun")
    literal_lengths = {s: L for s, L in enumerate(lengths[: 257 + hlit]) if L}
    distance_lengths = {s: L for s, L in enumerate(lengths[257 + hlit :]) if L}
    if not distance_lengths:
        distance_lengths = {0: 1}
    return HuffmanDecoder(literal_lengths), HuffmanDecoder(distance_lengths)


def _inflate_block(reader, out, literal_decoder, distance_decoder, max_output) -> None:
    while True:
        symbol = literal_decoder.decode(reader)
        if symbol == END_OF_BLOCK:
            return
        if symbol < 256:
            out.append(symbol)
        else:
            index = symbol - 257
            if index >= len(LENGTH_BASE):
                raise ValueError("invalid length symbol %d" % symbol)
            length = LENGTH_BASE[index] + reader.read_bits(LENGTH_EXTRA[index])
            dsym = distance_decoder.decode(reader)
            if dsym >= len(DISTANCE_BASE):
                raise ValueError("invalid distance symbol %d" % dsym)
            distance = DISTANCE_BASE[dsym] + reader.read_bits(DISTANCE_EXTRA[dsym])
            if distance > len(out):
                raise ValueError("distance reaches before stream start")
            start = len(out) - distance
            for i in range(length):
                out.append(out[start + i])
        if len(out) > max_output:
            raise ValueError("output exceeds max_output")


def adler32(data: bytes, value: int = 1) -> int:
    """Adler-32 checksum (RFC 1950) for the zlib framing helpers."""
    s1 = value & 0xFFFF
    s2 = (value >> 16) & 0xFFFF
    for byte in data:
        s1 = (s1 + byte) % 65521
        s2 = (s2 + s1) % 65521
    return (s2 << 16) | s1


def zlib_frame(raw_deflate: bytes, original: bytes) -> bytes:
    """Wrap a raw DEFLATE stream in zlib (RFC 1950) framing."""
    header = bytes([0x78, 0x9C])  # 32 KB window, default compression
    return header + raw_deflate + adler32(original).to_bytes(4, "big")


def zlib_unframe(framed: bytes) -> bytes:
    """Strip zlib framing, verify the checksum, return the decompressed data."""
    if len(framed) < 6:
        raise ValueError("zlib stream too short")
    cmf, flg = framed[0], framed[1]
    if cmf & 0x0F != 8:
        raise ValueError("unsupported compression method")
    if (cmf * 256 + flg) % 31:
        raise ValueError("zlib header check failed")
    data = deflate_decompress(framed[2:-4])
    if adler32(data) != int.from_bytes(framed[-4:], "big"):
        raise ValueError("adler32 mismatch")
    return data
