"""Bit-level readers and writers for DEFLATE (RFC 1951 bit order).

DEFLATE packs data least-significant-bit first within each byte.  Huffman
codes are packed most-significant-bit first *of the code*, which in this
convention means the code bits are reversed before writing.  The two classes
here hide that asymmetry from the LZ/Huffman layers.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits LSB-first and yields the packed byte string."""

    def __init__(self):
        self._bytes = bytearray()
        self._bit_buffer = 0
        self._bit_count = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write `count` bits of `value`, least significant bit first."""
        if count < 0:
            raise ValueError("negative bit count")
        self._bit_buffer |= (value & ((1 << count) - 1)) << self._bit_count
        self._bit_count += count
        while self._bit_count >= 8:
            self._bytes.append(self._bit_buffer & 0xFF)
            self._bit_buffer >>= 8
            self._bit_count -= 8

    def write_huffman_code(self, code: int, length: int) -> None:
        """Write a Huffman code (codes are bit-reversed on the wire)."""
        reversed_code = 0
        for _ in range(length):
            reversed_code = (reversed_code << 1) | (code & 1)
            code >>= 1
        self.write_bits(reversed_code, length)

    def align_to_byte(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._bit_count:
            self._bytes.append(self._bit_buffer & 0xFF)
            self._bit_buffer = 0
            self._bit_count = 0

    def write_bytes(self, data: bytes) -> None:
        """Write whole bytes; the stream must be byte-aligned."""
        if self._bit_count:
            raise ValueError("write_bytes requires byte alignment")
        self._bytes.extend(data)

    def getvalue(self) -> bytes:
        """Packed bytes, flushing any partial final byte."""
        out = bytearray(self._bytes)
        if self._bit_count:
            out.append(self._bit_buffer & 0xFF)
        return bytes(out)

    @property
    def bit_length(self) -> int:
        return 8 * len(self._bytes) + self._bit_count


class BitReader:
    """Reads bits LSB-first from a byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0  # bit position

    def read_bits(self, count: int) -> int:
        """Read `count` bits, least significant bit first."""
        value = 0
        for i in range(count):
            byte_index, bit_index = divmod(self._position, 8)
            if byte_index >= len(self._data):
                raise EOFError("bit stream exhausted")
            bit = (self._data[byte_index] >> bit_index) & 1
            value |= bit << i
            self._position += 1
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    def align_to_byte(self) -> None:
        """Skip to the next byte boundary."""
        self._position = (self._position + 7) // 8 * 8

    def read_bytes(self, count: int) -> bytes:
        """Read whole bytes; the stream must be byte-aligned."""
        if self._position % 8:
            raise ValueError("read_bytes requires byte alignment")
        start = self._position // 8
        if start + count > len(self._data):
            raise EOFError("bit stream exhausted")
        self._position += 8 * count
        return self._data[start : start + count]

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._position
