"""TLS 1.3 record layer (RFC 8446 Sec. 5) over AES-GCM.

This models exactly the slice of TLS the paper offloads: symmetric record
protection.  Handshake and key derivation stay on the CPU in every
configuration the paper evaluates (even QuickAssist offloads them as a
separate coarse-grain path), so we take traffic keys as given.

A :class:`TLSRecordLayer` holds one direction of a connection: a key, a
static IV, and a 64-bit sequence number that is XORed into the per-record
nonce.  Records round-trip between two layers constructed with the same key
material.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ulp.ctx_cache import cached_aesgcm
from repro.ulp.gcm import AESGCM, xor_bytes

CONTENT_TYPE_APPLICATION_DATA = 23
CONTENT_TYPE_ALERT = 21
CONTENT_TYPE_HANDSHAKE = 22

LEGACY_RECORD_VERSION = 0x0303
MAX_PLAINTEXT_SIZE = 16384  # 2^14, RFC 8446 Sec. 5.1
HEADER_SIZE = 5


@dataclass
class TLSRecord:
    """One protected record: 5-byte header + ciphertext + 16-byte tag."""

    content_type: int
    ciphertext: bytes
    tag: bytes

    @property
    def payload(self) -> bytes:
        return self.ciphertext + self.tag

    def wire_bytes(self) -> bytes:
        """Serialize to TLSCiphertext wire format."""
        body = self.payload
        header = (
            bytes([CONTENT_TYPE_APPLICATION_DATA])
            + LEGACY_RECORD_VERSION.to_bytes(2, "big")
            + len(body).to_bytes(2, "big")
        )
        return header + body

    @classmethod
    def from_wire(cls, data: bytes) -> "TLSRecord":
        """Parse one record from wire bytes (must contain exactly one record)."""
        if len(data) < HEADER_SIZE + AESGCM.TAG_SIZE:
            raise ValueError("record too short: %d bytes" % len(data))
        length = int.from_bytes(data[3:5], "big")
        body = data[HEADER_SIZE : HEADER_SIZE + length]
        if len(body) != length:
            raise ValueError("truncated record body")
        return cls(
            content_type=CONTENT_TYPE_APPLICATION_DATA,
            ciphertext=body[: -AESGCM.TAG_SIZE],
            tag=body[-AESGCM.TAG_SIZE :],
        )


def record_nonce(static_iv: bytes, sequence: int) -> bytes:
    """Per-record nonce: the 64-bit sequence number XORed into the IV tail."""
    if len(static_iv) != 12:
        raise ValueError("TLS 1.3 static IV must be 12 bytes")
    seq_bytes = sequence.to_bytes(8, "big")
    return xor_bytes(static_iv, bytes(4) + seq_bytes)


def record_aad(inner_length: int) -> bytes:
    """Additional data: the TLSCiphertext header (RFC 8446 Sec. 5.2)."""
    return (
        bytes([CONTENT_TYPE_APPLICATION_DATA])
        + LEGACY_RECORD_VERSION.to_bytes(2, "big")
        + inner_length.to_bytes(2, "big")
    )


class TLSRecordLayer:
    """One direction of TLS 1.3 record protection.

    >>> tx = TLSRecordLayer(bytes(16), bytes(12))
    >>> rx = TLSRecordLayer(bytes(16), bytes(12))
    >>> rx.unprotect(tx.protect(b"GET / HTTP/1.1\\r\\n"))
    (b'GET / HTTP/1.1\\r\\n', 23)
    """

    def __init__(self, key: bytes, static_iv: bytes):
        # Shared per-key context: key schedule + GF tables built once
        # process-wide, exactly once per traffic key.
        self.gcm = cached_aesgcm(key)
        self.static_iv = bytes(static_iv)
        self.sequence = 0

    def next_nonce(self) -> bytes:
        """The nonce the next record will use (sequence not advanced)."""
        return record_nonce(self.static_iv, self.sequence)

    def protect(
        self, plaintext: bytes, content_type: int = CONTENT_TYPE_APPLICATION_DATA
    ) -> TLSRecord:
        """Encrypt a plaintext fragment into a protected record.

        The inner plaintext is ``plaintext || content_type`` per RFC 8446;
        padding is not modelled (the paper's workloads never pad).
        """
        if len(plaintext) > MAX_PLAINTEXT_SIZE:
            raise ValueError(
                "TLS plaintext fragment exceeds 2^14 bytes: %d" % len(plaintext)
            )
        inner = plaintext + bytes([content_type])
        nonce = self.next_nonce()
        aad = record_aad(len(inner) + AESGCM.TAG_SIZE)
        # Cached-EIV path: the record layer holds the cipher context, so EIV
        # is derived once here and handed down — tag() must not rebuild
        # J0/EIV a second time.
        eiv = self.gcm.encrypted_iv(nonce)
        ciphertext, tag = self.gcm.encrypt(nonce, inner, aad, eiv=eiv)
        self.sequence += 1
        return TLSRecord(content_type=content_type, ciphertext=ciphertext, tag=tag)

    def unprotect(self, record: TLSRecord) -> tuple:
        """Decrypt and authenticate a record; returns (plaintext, content_type)."""
        nonce = self.next_nonce()
        aad = record_aad(len(record.payload))
        eiv = self.gcm.encrypted_iv(nonce)
        inner = self.gcm.decrypt(nonce, record.ciphertext, aad, record.tag, eiv=eiv)
        self.sequence += 1
        if not inner:
            raise ValueError("empty inner plaintext")
        # Strip zero padding then the content-type octet.
        end = len(inner)
        while end > 0 and inner[end - 1] == 0:
            end -= 1
        if end == 0:
            raise ValueError("record contains only padding")
        return inner[: end - 1], inner[end - 1]


def fragment_message(message: bytes, fragment_size: int) -> list:
    """Split an application message into record-sized fragments.

    The paper's ULP messages (4 KB / 16 KB / 64 KB web responses) span
    multiple TLS records and multiple TCP segments; this helper produces the
    record-layer fragmentation.
    """
    if fragment_size <= 0:
        raise ValueError("fragment_size must be positive")
    fragment_size = min(fragment_size, MAX_PLAINTEXT_SIZE)
    return [
        message[offset : offset + fragment_size]
        for offset in range(0, max(len(message), 1), fragment_size)
    ]
