"""LZ77 match finding for DEFLATE (RFC 1951 Sec. 4).

Produces a stream of symbols — literals and (length, distance) matches —
bounded by DEFLATE's limits: match lengths 3..258 and distances 1..32768.
Two match finders are provided:

* :class:`HashChainMatcher` — the software-quality matcher used by the CPU
  baseline, with hash chains and configurable search depth (zlib-style).
* A hardware-constrained variant lives in :mod:`repro.core.dsa.deflate_dsa`;
  it reuses :func:`tokens_to_bytes` and the symbol types from here so that
  both emit the same token language.
"""

from __future__ import annotations

from dataclasses import dataclass

MIN_MATCH = 3
MAX_MATCH = 258
MAX_DISTANCE = 32768


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    value: int


@dataclass(frozen=True)
class Match:
    """A back-reference: copy `length` bytes from `distance` bytes back."""

    length: int
    distance: int

    def __post_init__(self):
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise ValueError("match length %d out of range" % self.length)
        if not 1 <= self.distance <= MAX_DISTANCE:
            raise ValueError("match distance %d out of range" % self.distance)


def tokens_to_bytes(tokens: list) -> bytes:
    """Reconstruct the original byte stream from LZ77 tokens.

    This is the decoder-side semantics of the token stream and the invariant
    every matcher must satisfy: ``tokens_to_bytes(matcher(data)) == data``.
    """
    out = bytearray()
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.value)
        else:
            if token.distance > len(out):
                raise ValueError("match distance reaches before stream start")
            start = len(out) - token.distance
            # Overlapping copies replicate recent bytes (RLE-style).
            for i in range(token.length):
                out.append(out[start + i])
    return bytes(out)


class HashChainMatcher:
    """zlib-style greedy matcher with hash chains and lazy evaluation.

    Parameters mirror zlib's notion of compression effort:

    * ``max_chain`` — how many chain entries to probe per position.
    * ``lazy`` — whether to defer a match by one byte if the next position
      yields a strictly longer match (zlib levels >= 4).
    * ``window_size`` — history window; DEFLATE allows up to 32 KB, the
      SmartDIMM DSA restricts itself to 4 KB (Sec. V-B).
    * ``lazy_cutoff`` — zlib's ``max_lazy_match``: a match at least this
      long is emitted immediately without probing ``pos + 1``.  The default
      (:data:`MAX_MATCH`) cannot change the token stream — no match can be
      strictly longer than 258 — so it is purely an upper bound until a
      caller dials it down.
    * ``nice_length`` — stop walking the chain once a match this long is
      found (zlib's ``nice_match``).  Defaults to :data:`MAX_MATCH`, which
      matches the pre-existing "stop at the longest possible match" break.
    """

    def __init__(
        self,
        max_chain: int = 128,
        lazy: bool = True,
        window_size: int = MAX_DISTANCE,
        lazy_cutoff: int = MAX_MATCH,
        nice_length: int = MAX_MATCH,
    ):
        if window_size > MAX_DISTANCE:
            raise ValueError("window_size exceeds DEFLATE maximum")
        if max_chain < 1:
            raise ValueError("max_chain must be at least 1")
        if not MIN_MATCH <= lazy_cutoff <= MAX_MATCH:
            raise ValueError("lazy_cutoff must lie in [%d, %d]" % (MIN_MATCH, MAX_MATCH))
        if not MIN_MATCH <= nice_length <= MAX_MATCH:
            raise ValueError("nice_length must lie in [%d, %d]" % (MIN_MATCH, MAX_MATCH))
        self.max_chain = max_chain
        self.lazy = lazy
        self.window_size = window_size
        self.lazy_cutoff = lazy_cutoff
        self.nice_length = nice_length

    @staticmethod
    def _hash(data: bytes, pos: int) -> int:
        return (data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]

    def _longest_match(self, data: bytes, pos: int, head: dict, prev: dict) -> Match:
        """Best match at `pos`, or None."""
        if pos + MIN_MATCH > len(data):
            return None
        limit = max(0, pos - self.window_size)
        candidate = head.get(self._hash(data, pos), -1)
        best_length = MIN_MATCH - 1
        best_distance = 0
        chain_budget = self.max_chain
        max_length = min(MAX_MATCH, len(data) - pos)
        while candidate >= limit and chain_budget > 0:
            chain_budget -= 1
            # A candidate can only beat the current best if it agrees at the
            # byte the best match would have to extend past (zlib's quick
            # reject) — skipping it cannot change which match wins.
            if (
                best_length >= MIN_MATCH
                and data[candidate + best_length] != data[pos + best_length]
            ):
                candidate = prev.get(candidate, -1)
                continue
            # Common-prefix scan in 32-byte slabs, dropping to bytes only in
            # the slab containing the first mismatch.
            length = 0
            while length < max_length:
                span = min(32, max_length - length)
                if (
                    data[candidate + length : candidate + length + span]
                    == data[pos + length : pos + length + span]
                ):
                    length += span
                    continue
                while (
                    length < max_length
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                break
            if length > best_length:
                best_length = length
                best_distance = pos - candidate
                if length >= max_length or length >= self.nice_length:
                    break
            candidate = prev.get(candidate, -1)
        if best_length >= MIN_MATCH:
            return Match(length=best_length, distance=best_distance)
        return None

    def tokenize(self, data: bytes) -> list:
        """Tokenize `data` into a list of Literal/Match symbols."""
        tokens = []
        head = {}
        prev = {}
        pos = 0
        n = len(data)

        def insert(position: int) -> None:
            if position + MIN_MATCH <= n:
                key = self._hash(data, position)
                prior = head.get(key, -1)
                if prior >= 0:
                    prev[position] = prior
                head[key] = position

        while pos < n:
            match = self._longest_match(data, pos, head, prev)
            if (
                match is not None
                and self.lazy
                and match.length < self.lazy_cutoff
                and pos + 1 < n
            ):
                insert(pos)
                next_match = self._longest_match(data, pos + 1, head, prev)
                if next_match is not None and next_match.length > match.length:
                    tokens.append(Literal(data[pos]))
                    pos += 1
                    match = next_match
                else:
                    # Undo nothing: insert() is idempotent for our purposes.
                    pass
            elif match is not None:
                insert(pos)
            if match is None:
                insert(pos)
                tokens.append(Literal(data[pos]))
                pos += 1
            else:
                tokens.append(match)
                # Insert hash entries for the matched span so later matches
                # can reference into it (bounded to keep worst case sane).
                end = pos + match.length
                for p in range(pos + 1, min(end, n - MIN_MATCH + 1)):
                    insert(p)
                pos = end
        return tokens
