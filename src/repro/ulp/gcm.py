"""AES-GCM authenticated encryption (NIST SP 800-38D), from scratch.

Two consumers share this module:

* The CPU baseline (:mod:`repro.accel.cpu_onload`) encrypts whole TLS records
  through :class:`AESGCM`.
* The SmartDIMM TLS DSA (:mod:`repro.core.dsa.tls_dsa`) processes records one
  64-byte cacheline at a time, possibly out of order.  To support that, this
  module exposes the keystream block generator and the *stride-4 H-power*
  GHASH formulation the paper describes in Sec. V-A: precomputing H^i lets
  partial authentication tags for distinct cachelines be combined without a
  serial dependency chain.

All arithmetic is in GF(2^128) with the GCM polynomial
x^128 + x^7 + x^2 + x + 1, bit-reflected per the spec ("rightmost" bit is the
highest power).
"""

from __future__ import annotations

from repro.ulp.aes import AES

# The reduction polynomial R = 11100001 || 0^120, as an integer with bit 0
# being the *leftmost* (most significant in GCM's reflected convention).
_R = 0xE1000000000000000000000000000000


def gf128_mul(x: int, y: int) -> int:
    """Multiply two elements of GF(2^128) in GCM bit order.

    Operands and result are 128-bit integers whose most significant bit is
    the GCM "bit 0" (coefficient of x^0).
    """
    z = 0
    v = x
    for i in range(128):
        if (y >> (127 - i)) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _block_to_int(block: bytes) -> int:
    return int.from_bytes(block, "big")


def _int_to_block(value: int) -> bytes:
    return value.to_bytes(16, "big")


class GF128Multiplier:
    """Precomputed multiply-by-constant in GF(2^128).

    Models the GF Multiplier block of the TLS DSA (Fig. 7): the hardware
    pipelines a fixed-operand multiplier; we precompute a 4-bit windowed
    table so every `mul` is 32 table lookups + XORs.  The table itself is
    built from 128 cheap shift-reduce steps, mirroring how the hardware's
    LFSR-style reduction network is derived.
    """

    def __init__(self, constant: int):
        self.constant = constant
        # bit_products[i] = constant * x^i (GCM bit order: "bit i" is the
        # coefficient read from the MSB side).
        bit_products = [0] * 128
        value = constant
        bit_products[0] = value
        for i in range(1, 128):
            if value & 1:
                value = (value >> 1) ^ _R
            else:
                value >>= 1
            bit_products[i] = value
        # Nibble tables: table[pos][nibble] for the nibble at bit offset
        # 4*pos from the MSB.
        self._tables = []
        for pos in range(32):
            row = [0] * 16
            base = 4 * pos
            for nibble in range(1, 16):
                acc = 0
                for bit in range(4):
                    if (nibble >> (3 - bit)) & 1:
                        acc ^= bit_products[base + bit]
                row[nibble] = acc
            self._tables.append(row)

    def mul(self, x: int) -> int:
        """Return x * constant in GF(2^128)."""
        result = 0
        tables = self._tables
        for pos in range(32):
            nibble = (x >> (124 - 4 * pos)) & 0xF
            if nibble:
                result ^= tables[pos][nibble]
        return result


def ghash(h: bytes, data: bytes) -> bytes:
    """GHASH of `data` (zero-padded to a 16-byte multiple) under hash key `h`."""
    return _int_to_block(ghash_int(GF128Multiplier(_block_to_int(h)), data))


def ghash_int(mul_h: GF128Multiplier, data: bytes, y: int = 0) -> int:
    """Horner-form GHASH with a prepared multiplier; returns the accumulator."""
    for offset in range(0, len(data), 16):
        block = data[offset : offset + 16]
        if len(block) < 16:
            block = block + bytes(16 - len(block))
        y = mul_h.mul(y ^ _block_to_int(block))
    return y


def h_powers(h: bytes, count: int) -> list:
    """Return [H^1, H^2, ..., H^count] as integers.

    The TLS DSA precomputes these "in strides of 4" (Sec. V-A) to break the
    serial GHASH dependency chain between 64-byte cachelines: a cacheline of
    four 16-byte blocks contributes ``b0*H^4 + b1*H^3 + b2*H^2 + b3*H`` and
    these per-cacheline partial products commute once weighted by the right
    power of H.
    """
    h_int = _block_to_int(h)
    powers = [h_int]
    for _ in range(count - 1):
        powers.append(gf128_mul(powers[-1], h_int))
    return powers


def _inc32(counter_block: bytes) -> bytes:
    """Increment the rightmost 32 bits of a 16-byte counter block."""
    prefix, counter = counter_block[:12], int.from_bytes(counter_block[12:], "big")
    return prefix + ((counter + 1) & 0xFFFFFFFF).to_bytes(4, "big")


class AESGCM:
    """AES-GCM AEAD for a fixed key.

    >>> gcm = AESGCM(bytes(16))
    >>> ct, tag = gcm.encrypt(bytes(12), b"hello world", b"aad")
    >>> gcm.decrypt(bytes(12), ct, b"aad", tag)
    b'hello world'
    """

    TAG_SIZE = 16

    def __init__(self, key: bytes):
        self._aes = AES(key)
        # Hash subkey H = E_K(0^128); the paper computes this on the CPU with
        # one AES-NI invocation and ships it to the DIMM via MMIO.
        self.h = self._aes.encrypt_block(bytes(16))
        self.mul_h = GF128Multiplier(_block_to_int(self.h))

    # -- building blocks used by the DSA ------------------------------------

    def j0(self, iv: bytes) -> bytes:
        """Pre-counter block J0 for a given IV."""
        if len(iv) == 12:
            return iv + b"\x00\x00\x00\x01"
        length_block = bytes(8) + (8 * len(iv)).to_bytes(8, "big")
        return ghash(self.h, iv + bytes((16 - len(iv) % 16) % 16) + length_block)

    def encrypted_iv(self, iv: bytes) -> bytes:
        """EIV = E_K(J0), the block masking the final tag (CPU-computed)."""
        return self._aes.encrypt_block(self.j0(iv))

    def keystream_block(self, iv: bytes, block_index: int) -> bytes:
        """The keystream block XORed against plaintext block `block_index`.

        Block 0 of the message stream corresponds to counter J0 + 1.  Random
        access here is what makes AES-GCM "incrementally computable"
        (Observation 4): any byte range can be (de/en)crypted independently.
        """
        j0 = self.j0(iv)
        counter = int.from_bytes(j0[12:], "big")
        counter = (counter + 1 + block_index) & 0xFFFFFFFF
        return self._aes.encrypt_block(j0[:12] + counter.to_bytes(4, "big"))

    def keystream(self, iv: bytes, length: int, start_block: int = 0) -> bytes:
        """`length` bytes of keystream starting at block `start_block`."""
        blocks_needed = (length + 15) // 16
        out = bytearray()
        for i in range(blocks_needed):
            out.extend(self.keystream_block(iv, start_block + i))
        return bytes(out[:length])

    @staticmethod
    def _lengths_block(aad_len: int, ct_len: int) -> bytes:
        return (8 * aad_len).to_bytes(8, "big") + (8 * ct_len).to_bytes(8, "big")

    def tag(self, iv: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        """Authentication tag over (aad, ciphertext)."""
        padded = (
            aad
            + bytes((16 - len(aad) % 16) % 16)
            + ciphertext
            + bytes((16 - len(ciphertext) % 16) % 16)
            + self._lengths_block(len(aad), len(ciphertext))
        )
        s = _int_to_block(ghash_int(self.mul_h, padded))
        eiv = self.encrypted_iv(iv)
        return bytes(a ^ b for a, b in zip(s, eiv))

    # -- whole-message AEAD --------------------------------------------------

    def encrypt(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> tuple:
        """Encrypt and authenticate; returns (ciphertext, tag)."""
        stream = self.keystream(iv, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        return ciphertext, self.tag(iv, ciphertext, aad)

    def decrypt(self, iv: bytes, ciphertext: bytes, aad: bytes, tag: bytes) -> bytes:
        """Verify the tag and decrypt; raises ValueError on tag mismatch."""
        expected = self.tag(iv, ciphertext, aad)
        if not _constant_time_eq(expected, tag):
            raise ValueError("GCM authentication tag mismatch")
        stream = self.keystream(iv, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
