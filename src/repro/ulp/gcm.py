"""AES-GCM authenticated encryption (NIST SP 800-38D), from scratch.

Two consumers share this module:

* The CPU baseline (:mod:`repro.accel.cpu_onload`) encrypts whole TLS records
  through :class:`AESGCM`.
* The SmartDIMM TLS DSA (:mod:`repro.core.dsa.tls_dsa`) processes records one
  64-byte cacheline at a time, possibly out of order.  To support that, this
  module exposes the keystream block generator and the *stride-4 H-power*
  GHASH formulation the paper describes in Sec. V-A: precomputing H^i lets
  partial authentication tags for distinct cachelines be combined without a
  serial dependency chain.

All arithmetic is in GF(2^128) with the GCM polynomial
x^128 + x^7 + x^2 + x + 1, bit-reflected per the spec ("rightmost" bit is the
highest power).

**Fast path.**  Per-record work is batched so the functional datapath keeps
up with the analytical server model (see README "Performance"):

* :meth:`AESGCM.keystream` computes J0 once per record and generates all
  counter blocks in one batched call (:meth:`repro.ulp.aes.AES.encrypt_ctr_blocks`,
  numpy-vectorised for large records, scalar otherwise).
* :class:`GF128Multiplier` optionally widens its 4-bit window tables to
  byte-wide tables (16 lookups per multiply instead of 32), and large GHASH
  inputs run through a lane-parallel Horner in H^L (`_VEC_LANES` lanes) whose
  per-step multiply is a vectorised table gather.
* XOR runs wide-word over whole records (:func:`xor_bytes`) instead of
  per byte.

Every fast path is bit-identical to the scalar reference; the
``*_reference`` methods preserve the original from-scratch formulation for
equivalence tests and the perf-regression baseline in ``benchmarks/perf``.
"""

from __future__ import annotations

from repro.ulp.aes import AES

try:  # optional vector backend for bulk GHASH
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

# The reduction polynomial R = 11100001 || 0^120, as an integer with bit 0
# being the *leftmost* (most significant in GCM's reflected convention).
_R = 0xE1000000000000000000000000000000

# The multiplicative identity of GF(2^128) in GCM bit order.
_IDENTITY = 1 << 127

# Lane count for the vectorised bulk-GHASH Horner (a power of two; each bulk
# step multiplies every lane accumulator by H^_VEC_LANES at once).
_VEC_LANES = 512
# Minimum GHASH input (in blocks) before the lane-parallel path pays for its
# per-call setup; below this the byte-table scalar Horner wins.
_VEC_MIN_BLOCKS = 2 * _VEC_LANES


def gf128_mul(x: int, y: int) -> int:
    """Multiply two elements of GF(2^128) in GCM bit order.

    Operands and result are 128-bit integers whose most significant bit is
    the GCM "bit 0" (coefficient of x^0).
    """
    z = 0
    v = x
    for i in range(128):
        if (y >> (127 - i)) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _block_to_int(block: bytes) -> int:
    return int.from_bytes(block, "big")


def _int_to_block(value: int) -> bytes:
    return value.to_bytes(16, "big")


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two byte strings, truncated to the shorter operand.

    One fixed-width integer XOR replaces the per-byte generator the seed
    implementation used — ~50x faster on whole TLS records.
    """
    n = min(len(a), len(b))
    if n == 0:
        return b""
    if len(a) != n:
        a = a[:n]
    if len(b) != n:
        b = b[:n]
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(n, "big")


def _bit_products(constant: int) -> list:
    """bit_products[i] = constant * x^i (GCM bit order, MSB-side bit i)."""
    products = [0] * 128
    value = constant
    products[0] = value
    for i in range(1, 128):
        if value & 1:
            value = (value >> 1) ^ _R
        else:
            value >>= 1
        products[i] = value
    return products


class GF128Multiplier:
    """Precomputed multiply-by-constant in GF(2^128).

    Models the GF Multiplier block of the TLS DSA (Fig. 7): the hardware
    pipelines a fixed-operand multiplier; we precompute a 4-bit windowed
    table so every `mul` is 32 table lookups + XORs.  The table itself is
    built from 128 cheap shift-reduce steps, mirroring how the hardware's
    LFSR-style reduction network is derived.

    With ``byte_tables=True`` the window widens to 8 bits (16 lookups per
    multiply) — the right trade once the multiplier is cached per session
    key and reused across records (see :mod:`repro.ulp.ctx_cache`).
    """

    def __init__(self, constant: int, byte_tables: bool = False):
        self.constant = constant
        bit_products = _bit_products(constant)
        self._bit_products = bit_products
        # Nibble tables: table[pos][nibble] for the nibble at bit offset
        # 4*pos from the MSB.
        self._tables = []
        for pos in range(32):
            row = [0] * 16
            base = 4 * pos
            for nibble in range(1, 16):
                acc = 0
                for bit in range(4):
                    if (nibble >> (3 - bit)) & 1:
                        acc ^= bit_products[base + bit]
                row[nibble] = acc
            self._tables.append(row)
        self._byte_tables = None
        if byte_tables:
            self.build_byte_tables()

    def build_byte_tables(self) -> None:
        """Widen the window tables to 8 bits (amortised once per key)."""
        if self._byte_tables is not None:
            return
        bit_products = self._bit_products
        tables = []
        for pos in range(16):
            row = [0] * 256
            base = 8 * pos
            for value in range(1, 256):
                low = value & (-value)
                # MSB-first bit index of the lowest set bit of `value`.
                row[value] = row[value ^ low] ^ bit_products[base + 7 - (low.bit_length() - 1)]
            tables.append(row)
        self._byte_tables = tables

    def mul(self, x: int) -> int:
        """Return x * constant in GF(2^128)."""
        t = self._byte_tables
        if t is not None:
            t0, t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14, t15 = t
            return (
                t0[(x >> 120) & 0xFF] ^ t1[(x >> 112) & 0xFF]
                ^ t2[(x >> 104) & 0xFF] ^ t3[(x >> 96) & 0xFF]
                ^ t4[(x >> 88) & 0xFF] ^ t5[(x >> 80) & 0xFF]
                ^ t6[(x >> 72) & 0xFF] ^ t7[(x >> 64) & 0xFF]
                ^ t8[(x >> 56) & 0xFF] ^ t9[(x >> 48) & 0xFF]
                ^ t10[(x >> 40) & 0xFF] ^ t11[(x >> 32) & 0xFF]
                ^ t12[(x >> 24) & 0xFF] ^ t13[(x >> 16) & 0xFF]
                ^ t14[(x >> 8) & 0xFF] ^ t15[x & 0xFF]
            )
        result = 0
        tables = self._tables
        for pos in range(32):
            nibble = (x >> (124 - 4 * pos)) & 0xF
            if nibble:
                result ^= tables[pos][nibble]
        return result


def ghash(h: bytes, data: bytes) -> bytes:
    """GHASH of `data` (zero-padded to a 16-byte multiple) under hash key `h`."""
    return _int_to_block(ghash_int(GF128Multiplier(_block_to_int(h)), data))


def ghash_int(mul_h: GF128Multiplier, data: bytes, y: int = 0) -> int:
    """Horner-form GHASH with a prepared multiplier; returns the accumulator.

    Walks the input through a memoryview so full blocks are converted
    in place without intermediate slice copies; a short final block is
    zero-padded per the spec.
    """
    mul = mul_h.mul
    n = len(data)
    full = n - (n % 16)
    view = memoryview(data)
    from_bytes = int.from_bytes
    for offset in range(0, full, 16):
        y = mul(y ^ from_bytes(view[offset : offset + 16], "big"))
    if full != n:
        tail = from_bytes(view[full:], "big") << (8 * (16 - (n - full)))
        y = mul(y ^ tail)
    return y


def h_powers(h: bytes, count: int) -> list:
    """Return [H^1, H^2, ..., H^count] as integers.

    The TLS DSA precomputes these "in strides of 4" (Sec. V-A) to break the
    serial GHASH dependency chain between 64-byte cachelines: a cacheline of
    four 16-byte blocks contributes ``b0*H^4 + b1*H^3 + b2*H^2 + b3*H`` and
    these per-cacheline partial products commute once weighted by the right
    power of H.

    Built with a prepared :class:`GF128Multiplier` (32 lookups per power)
    rather than the 128-step bitwise multiply.
    """
    h_int = _block_to_int(h)
    mul = GF128Multiplier(h_int).mul
    powers = [h_int]
    for _ in range(count - 1):
        powers.append(mul(powers[-1]))
    return powers


def _inc32(counter_block: bytes) -> bytes:
    """Increment the rightmost 32 bits of a 16-byte counter block."""
    prefix, counter = counter_block[:12], int.from_bytes(counter_block[12:], "big")
    return prefix + ((counter + 1) & 0xFFFFFFFF).to_bytes(4, "big")


class AESGCM:
    """AES-GCM AEAD for a fixed key.

    Construction prepares the whole per-key context once — AES key schedule,
    hash subkey H, byte-wide GF multiplier tables — mirroring the paper's
    config-memory TLS context that is shipped to the DIMM a single time via
    MMIO.  Reuse instances across records (see :mod:`repro.ulp.ctx_cache`);
    everything per-record (J0, EIV, keystream, tag) is then batched work.

    >>> gcm = AESGCM(bytes(16))
    >>> ct, tag = gcm.encrypt(bytes(12), b"hello world", b"aad")
    >>> gcm.decrypt(bytes(12), ct, b"aad", tag)
    b'hello world'
    """

    TAG_SIZE = 16

    #: number of J0 blocks remembered across calls (per-record IVs of
    #: interleaved offloads each hit their entry).
    J0_CACHE_ENTRIES = 8

    def __init__(self, key: bytes):
        self._aes = AES(key)
        # Hash subkey H = E_K(0^128); the paper computes this on the CPU with
        # one AES-NI invocation and ships it to the DIMM via MMIO.
        self.h = self._aes.encrypt_block(bytes(16))
        self._h_int = _block_to_int(self.h)
        self.mul_h = GF128Multiplier(self._h_int, byte_tables=True)
        self._h_power_list = [self._h_int]  # H^1, H^2, ... grown on demand
        self._j0_cache = {}
        self._vec_tables = None  # lazy (32, 16, 4) uint32 table for H^_VEC_LANES
        self._ref_mul = None  # lazy nibble-window multiplier for *_reference

    # -- building blocks used by the DSA ------------------------------------

    def j0(self, iv: bytes) -> bytes:
        """Pre-counter block J0 for a given IV (memoised per IV)."""
        iv = bytes(iv)
        cached = self._j0_cache.get(iv)
        if cached is None:
            cached = self._compute_j0(iv)
            if len(self._j0_cache) >= self.J0_CACHE_ENTRIES:
                self._j0_cache.pop(next(iter(self._j0_cache)))
            self._j0_cache[iv] = cached
        return cached

    def _compute_j0(self, iv: bytes) -> bytes:
        if len(iv) == 12:
            return iv + b"\x00\x00\x00\x01"
        length_block = bytes(8) + (8 * len(iv)).to_bytes(8, "big")
        padded = iv + bytes((16 - len(iv) % 16) % 16) + length_block
        return _int_to_block(ghash_int(self.mul_h, padded))

    def encrypted_iv(self, iv: bytes) -> bytes:
        """EIV = E_K(J0), the block masking the final tag (CPU-computed)."""
        return self._aes.encrypt_block(self.j0(iv))

    def h_power(self, exponent: int) -> int:
        """H^exponent as an integer, memoised per key.

        Exponent 0 returns the multiplicative identity.  The shared power
        list serves every positional-GHASH consumer (TLS DSA stride-4
        folding, multi-channel partial-tag weighting) so powers are computed
        once per key instead of once per record.
        """
        if exponent < 0:
            raise ValueError("negative exponent")
        if exponent == 0:
            return _IDENTITY
        powers = self._h_power_list
        if exponent > len(powers):
            mul = self.mul_h.mul
            while len(powers) < exponent:
                powers.append(mul(powers[-1]))
        return powers[exponent - 1]

    def keystream_block(self, iv: bytes, block_index: int) -> bytes:
        """The keystream block XORed against plaintext block `block_index`.

        Block 0 of the message stream corresponds to counter J0 + 1.  Random
        access here is what makes AES-GCM "incrementally computable"
        (Observation 4): any byte range can be (de/en)crypted independently.
        """
        j0 = self.j0(iv)
        counter = int.from_bytes(j0[12:], "big")
        counter = (counter + 1 + block_index) & 0xFFFFFFFF
        return self._aes.encrypt_block(j0[:12] + counter.to_bytes(4, "big"))

    def keystream(self, iv: bytes, length: int, start_block: int = 0) -> bytes:
        """`length` bytes of keystream starting at block `start_block`.

        J0 is computed once per call (and memoised per IV), then every
        counter block is generated in one batched
        :meth:`~repro.ulp.aes.AES.encrypt_ctr_blocks` invocation — the seed
        implementation recomputed J0 and dispatched one block-cipher call
        per 16-byte block.
        """
        if length <= 0:
            return b""
        nblocks = (length + 15) // 16
        j0 = self.j0(iv)
        base = int.from_bytes(j0[12:], "big")
        stream = self._aes.encrypt_ctr_blocks(
            j0[:12], (base + 1 + start_block) & 0xFFFFFFFF, nblocks
        )
        return stream[:length] if len(stream) != length else stream

    @staticmethod
    def _lengths_block(aad_len: int, ct_len: int) -> bytes:
        return (8 * aad_len).to_bytes(8, "big") + (8 * ct_len).to_bytes(8, "big")

    def tag(self, iv: bytes, ciphertext: bytes, aad: bytes, eiv: bytes = None) -> bytes:
        """Authentication tag over (aad, ciphertext).

        Callers that already hold the record context can pass the
        precomputed ``eiv`` (= :meth:`encrypted_iv`) to skip the redundant
        J0 + block-cipher recomputation the seed performed on every call.
        """
        y = self._ghash_bulk(aad) if aad else 0
        y = self._ghash_bulk(ciphertext, y) if ciphertext else y
        lengths = self._lengths_block(len(aad), len(ciphertext))
        y = self.mul_h.mul(y ^ _block_to_int(lengths))
        if eiv is None:
            eiv = self.encrypted_iv(iv)
        return xor_bytes(_int_to_block(y), eiv)

    # -- bulk GHASH ----------------------------------------------------------

    def ghash(self, data: bytes, y: int = 0) -> int:
        """Public bulk-GHASH entry point (accumulator in, accumulator out)."""
        return self._ghash_bulk(data, y)

    def _ghash_bulk(self, data: bytes, y: int = 0) -> int:
        """GHASH `data` (zero-padded to a block) into accumulator `y`.

        Large inputs run a lane-parallel Horner: split the block stream into
        ``_VEC_LANES`` interleaved lanes, advance every lane accumulator by
        H^lanes per step with one vectorised table gather, then combine the
        lanes with a scalar Horner in H.  Bit-identical to the serial form
        because the weighted per-lane products commute — the same algebra
        that lets the TLS DSA fold out-of-order cachelines (Sec. V-A).
        """
        nblocks = (len(data) + 15) // 16
        if _np is None or nblocks < _VEC_MIN_BLOCKS:
            return ghash_int(self.mul_h, data, y)
        lanes = _VEC_LANES
        steps = nblocks // lanes
        prefix_blocks = nblocks - steps * lanes
        y = ghash_int(self.mul_h, data[: 16 * prefix_blocks], y)
        body = bytes(data[16 * prefix_blocks :])
        if len(body) % 16:
            body = body + bytes(16 - len(body) % 16)
        arr = (
            _np.frombuffer(body, dtype=">u4")
            .astype(_np.uint32)
            .reshape(steps, lanes, 4)
        )
        acc = arr[0].copy()
        if y:
            acc[0] ^= _np.array(
                [(y >> 96) & 0xFFFFFFFF, (y >> 64) & 0xFFFFFFFF,
                 (y >> 32) & 0xFFFFFFFF, y & 0xFFFFFFFF],
                dtype=_np.uint32,
            )
        table = self._vec_mul_tables()
        for s in range(1, steps):
            z = _np.zeros_like(acc)
            for pos in range(16):
                limb = acc[:, pos >> 2]
                idx = (limb >> _np.uint32(24 - 8 * (pos & 3))) & _np.uint32(0xFF)
                z ^= table[pos, idx]
            acc = z ^ arr[s]
        # Lane combine: y = sum_j acc_j * H^(lanes - j), Horner in H.
        combined = acc.astype(">u4").tobytes()
        mul = self.mul_h.mul
        from_bytes = int.from_bytes
        y = 0
        for offset in range(0, 16 * lanes, 16):
            y = mul(y ^ from_bytes(combined[offset : offset + 16], "big"))
        return y

    def _vec_mul_tables(self):
        """The (16, 256, 4)-uint32 byte tables of H^_VEC_LANES, built once."""
        if self._vec_tables is None:
            products = _bit_products(self.h_power(_VEC_LANES))
            rows = bytearray()
            for pos in range(16):
                row = [0] * 256
                base = 8 * pos
                for value in range(1, 256):
                    low = value & (-value)
                    row[value] = row[value ^ low] ^ products[base + 7 - (low.bit_length() - 1)]
                rows += b"".join(entry.to_bytes(16, "big") for entry in row)
            self._vec_tables = (
                _np.frombuffer(bytes(rows), dtype=">u4")
                .astype(_np.uint32)
                .reshape(16, 256, 4)
            )
        return self._vec_tables

    # -- whole-message AEAD --------------------------------------------------

    def encrypt(self, iv: bytes, plaintext: bytes, aad: bytes = b"", eiv: bytes = None) -> tuple:
        """Encrypt and authenticate; returns (ciphertext, tag).

        J0 is derived once for the whole record; pass a precomputed ``eiv``
        to also skip the EIV block-cipher call (the cached-EIV path used by
        :mod:`repro.ulp.tls`).
        """
        stream = self.keystream(iv, len(plaintext))
        ciphertext = xor_bytes(plaintext, stream)
        if eiv is None:
            eiv = self.encrypted_iv(iv)
        return ciphertext, self.tag(iv, ciphertext, aad, eiv=eiv)

    def decrypt(self, iv: bytes, ciphertext: bytes, aad: bytes, tag: bytes,
                eiv: bytes = None) -> bytes:
        """Verify the tag and decrypt; raises ValueError on tag mismatch."""
        expected = self.tag(iv, ciphertext, aad, eiv=eiv)
        if not _constant_time_eq(expected, tag):
            raise ValueError("GCM authentication tag mismatch")
        stream = self.keystream(iv, len(ciphertext))
        return xor_bytes(ciphertext, stream)

    # -- seed-fidelity reference path ----------------------------------------

    def _reference_mul(self) -> GF128Multiplier:
        if self._ref_mul is None:
            self._ref_mul = GF128Multiplier(self._h_int)
        return self._ref_mul

    def keystream_reference(self, iv: bytes, length: int, start_block: int = 0) -> bytes:
        """Scalar keystream exactly as the seed computed it: J0 rebuilt and
        one block-cipher call dispatched per 16-byte block."""
        blocks_needed = (length + 15) // 16
        out = bytearray()
        for i in range(blocks_needed):
            j0 = self._compute_j0(iv)
            counter = int.from_bytes(j0[12:], "big")
            counter = (counter + 1 + start_block + i) & 0xFFFFFFFF
            out.extend(self._aes.encrypt_block(j0[:12] + counter.to_bytes(4, "big")))
        return bytes(out[:length])

    def tag_reference(self, iv: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        """Serial nibble-window GHASH over one concatenated padded buffer
        (the seed formulation), with per-byte EIV masking."""
        padded = (
            aad
            + bytes((16 - len(aad) % 16) % 16)
            + ciphertext
            + bytes((16 - len(ciphertext) % 16) % 16)
            + self._lengths_block(len(aad), len(ciphertext))
        )
        s = _int_to_block(ghash_int(self._reference_mul(), padded))
        eiv = self._aes.encrypt_block(self._compute_j0(iv))
        return bytes(a ^ b for a, b in zip(s, eiv))

    def encrypt_reference(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> tuple:
        """The seed encrypt datapath (per-block J0, per-byte XOR, serial
        GHASH); kept as the equivalence-test ground truth and the "before"
        measurement of ``benchmarks/perf``."""
        stream = self.keystream_reference(iv, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        return ciphertext, self.tag_reference(iv, ciphertext, aad)

    def decrypt_reference(self, iv: bytes, ciphertext: bytes, aad: bytes, tag: bytes) -> bytes:
        """The seed decrypt datapath; raises ValueError on tag mismatch."""
        expected = self.tag_reference(iv, ciphertext, aad)
        if not _constant_time_eq(expected, tag):
            raise ValueError("GCM authentication tag mismatch")
        stream = self.keystream_reference(iv, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    # One fixed-width integer compare: both operands are equal-length byte
    # strings, so the XOR is data-independent work (no short-circuit on the
    # first differing byte as a bytes == would allow).
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")) == 0
