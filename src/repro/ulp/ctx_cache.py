"""Session-keyed cipher-context cache shared by every datapath placement.

The paper ships a per-connection TLS context to the DIMM **once** via MMIO
config writes — key schedule, hash subkey H, EIV, stride-4 H powers — and
then reuses it for every record of the session (Sec. V-A, Fig. 7).  The
software analogue is this module: one :class:`~repro.ulp.gcm.AESGCM`
instance per traffic key, holding the AES round keys, the byte-windowed
GF(2^128) multiplier tables, and the memoised H-power list, built on first
use and shared by every consumer (CPU onload, QuickAssist model, TLS record
layer, TLS DSA contexts, multi-channel tag combine).

The seed rebuilt all of that per record in several places — e.g.
``TLSOffloadContext`` constructed a fresh ``AESGCM`` per offloaded record —
which dominated the functional datapath's runtime.  TLS sessions reuse a
small number of traffic keys, so a bounded LRU keyed by the raw key bytes
captures effectively every access.
"""

from __future__ import annotations

import threading

from repro.ulp.gcm import AESGCM

#: Upper bound on cached per-key contexts; each holds the AES key schedule,
#: ~180 KB of GF multiplier tables, and the grown-on-demand H-power list.
MAX_CACHED_KEYS = 64

_lock = threading.Lock()
_cache = {}  # key bytes -> AESGCM, insertion-ordered for LRU eviction
_hits = 0
_misses = 0


def cached_aesgcm(key: bytes) -> AESGCM:
    """The shared :class:`AESGCM` context for `key`, built at most once.

    Thread-safe; least-recently-used contexts are evicted beyond
    :data:`MAX_CACHED_KEYS`.
    """
    global _hits, _misses
    key = bytes(key)
    with _lock:
        gcm = _cache.get(key)
        if gcm is not None:
            _hits += 1
            # Refresh LRU position (dicts preserve insertion order).
            del _cache[key]
            _cache[key] = gcm
            return gcm
    # Build outside the lock: key-schedule + table construction is the
    # expensive part and must not serialise unrelated keys.
    gcm = AESGCM(key)
    with _lock:
        existing = _cache.pop(key, None)
        if existing is not None:
            # Another thread won the race; keep its context (it may already
            # have grown H powers / vector tables).
            gcm = existing
            _hits += 1
        else:
            _misses += 1
        _cache[key] = gcm
        while len(_cache) > MAX_CACHED_KEYS:
            _cache.pop(next(iter(_cache)))
    return gcm


def cache_info() -> dict:
    """Cache statistics: ``{"hits", "misses", "size"}`` (for tests/telemetry)."""
    with _lock:
        return {"hits": _hits, "misses": _misses, "size": len(_cache)}


def clear_cache() -> None:
    """Drop every cached context and reset statistics (test isolation)."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
