"""Huffman coding for DEFLATE (RFC 1951 Sec. 3.2).

Provides canonical code construction (including optimal length-limited codes
via the package-merge algorithm), the fixed literal/length and distance
codes, and the length/distance symbol tables shared by the compressor,
decompressor, and the deflate DSA.
"""

from __future__ import annotations

import heapq

MAX_CODE_LENGTH = 15

# Length symbol table (RFC 1951 Sec. 3.2.5): symbol 257 + i encodes lengths
# starting at _LENGTH_BASE[i] with _LENGTH_EXTRA[i] extra bits.
LENGTH_BASE = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
]
LENGTH_EXTRA = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
]
DISTANCE_BASE = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
    8193, 12289, 16385, 24577,
]
DISTANCE_EXTRA = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
]

END_OF_BLOCK = 256

# Order in which code-length-code lengths appear in a dynamic block header.
CODE_LENGTH_ORDER = [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15]


def length_to_symbol(length: int) -> tuple:
    """Map a match length (3..258) to (symbol, extra_bits_value, extra_bits)."""
    for i in range(len(LENGTH_BASE) - 1, -1, -1):
        if length >= LENGTH_BASE[i]:
            return 257 + i, length - LENGTH_BASE[i], LENGTH_EXTRA[i]
    raise ValueError("invalid match length %d" % length)


def distance_to_symbol(distance: int) -> tuple:
    """Map a match distance (1..32768) to (symbol, extra_bits_value, extra_bits)."""
    for i in range(len(DISTANCE_BASE) - 1, -1, -1):
        if distance >= DISTANCE_BASE[i]:
            return i, distance - DISTANCE_BASE[i], DISTANCE_EXTRA[i]
    raise ValueError("invalid match distance %d" % distance)


def package_merge_lengths(frequencies: dict, limit: int = MAX_CODE_LENGTH) -> dict:
    """Optimal length-limited Huffman code lengths (package-merge).

    `frequencies` maps symbol -> count (counts must be positive).  Returns
    symbol -> code length.  With a single symbol, the length is 1 (DEFLATE
    requires at least one bit per code).
    """
    symbols = sorted(frequencies)
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}
    if len(symbols) > (1 << limit):
        raise ValueError("alphabet too large for %d-bit codes" % limit)
    # Each item is (weight, {symbol: count-of-activations}).
    originals = [(frequencies[s], {s: 1}) for s in symbols]
    packages = sorted(originals, key=lambda item: item[0])
    merged_rows = []
    for _ in range(limit - 1):
        paired = []
        for i in range(0, len(packages) - 1, 2):
            weight = packages[i][0] + packages[i + 1][0]
            members = dict(packages[i][1])
            for symbol, count in packages[i + 1][1].items():
                members[symbol] = members.get(symbol, 0) + count
            paired.append((weight, members))
        packages = sorted(paired + originals, key=lambda item: item[0])
        merged_rows.append(packages)
    take = 2 * len(symbols) - 2
    lengths = dict.fromkeys(symbols, 0)
    for weight, members in packages[:take]:
        for symbol, count in members.items():
            lengths[symbol] += count
    return lengths


def canonical_codes(lengths: dict) -> dict:
    """Assign canonical Huffman codes given symbol -> length (RFC 1951 3.2.2)."""
    bl_count = [0] * (MAX_CODE_LENGTH + 1)
    for length in lengths.values():
        if length:
            bl_count[length] += 1
    next_code = [0] * (MAX_CODE_LENGTH + 2)
    code = 0
    for bits in range(1, MAX_CODE_LENGTH + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
    codes = {}
    for symbol in sorted(lengths):
        length = lengths[symbol]
        if length:
            codes[symbol] = next_code[length]
            next_code[length] += 1
    return codes


def validate_kraft(lengths: dict) -> bool:
    """Check that the code lengths satisfy the Kraft inequality with equality
    allowed only when <= 1 (a complete or under-full code)."""
    total = sum(1 << (MAX_CODE_LENGTH - L) for L in lengths.values() if L)
    return total <= (1 << MAX_CODE_LENGTH)


class HuffmanEncoder:
    """Symbol -> (code, length) encoder built from code lengths."""

    def __init__(self, lengths: dict):
        if not validate_kraft(lengths):
            raise ValueError("code lengths violate the Kraft inequality")
        self.lengths = dict(lengths)
        self.codes = canonical_codes(lengths)

    @classmethod
    def from_frequencies(cls, frequencies: dict, limit: int = MAX_CODE_LENGTH):
        return cls(package_merge_lengths(frequencies, limit))

    def encode(self, symbol: int) -> tuple:
        """Return (code, bit_length) for `symbol`."""
        return self.codes[symbol], self.lengths[symbol]

    def __contains__(self, symbol: int) -> bool:
        return symbol in self.codes


class HuffmanDecoder:
    """Bit-serial canonical Huffman decoder."""

    def __init__(self, lengths: dict):
        codes = canonical_codes(lengths)
        self._table = {
            (lengths[symbol], code): symbol for symbol, code in codes.items()
        }
        self._max_length = max((L for L in lengths.values() if L), default=0)

    def decode(self, reader) -> int:
        """Decode one symbol from a :class:`repro.ulp.bitstream.BitReader`."""
        code = 0
        for length in range(1, self._max_length + 1):
            code = (code << 1) | reader.read_bit()
            symbol = self._table.get((length, code))
            if symbol is not None:
                return symbol
        raise ValueError("invalid Huffman code in stream")


def fixed_literal_lengths() -> dict:
    """Code lengths of the fixed literal/length code (RFC 1951 Sec. 3.2.6)."""
    lengths = {}
    for symbol in range(0, 144):
        lengths[symbol] = 8
    for symbol in range(144, 256):
        lengths[symbol] = 9
    for symbol in range(256, 280):
        lengths[symbol] = 7
    for symbol in range(280, 288):
        lengths[symbol] = 8
    return lengths


def fixed_distance_lengths() -> dict:
    """Code lengths of the fixed distance code: 5 bits for all 30 symbols."""
    return {symbol: 5 for symbol in range(30)}


def encode_code_lengths(lengths_sequence: list) -> list:
    """Run-length encode a code-length sequence with symbols 16/17/18.

    Returns a list of (symbol, extra_value, extra_bits) tuples per
    RFC 1951 Sec. 3.2.7.
    """
    out = []
    i = 0
    n = len(lengths_sequence)
    while i < n:
        value = lengths_sequence[i]
        run = 1
        while i + run < n and lengths_sequence[i + run] == value:
            run += 1
        i += run
        if value == 0:
            while run >= 11:
                chunk = min(run, 138)
                out.append((18, chunk - 11, 7))
                run -= chunk
            if run >= 3:
                out.append((17, run - 3, 3))
                run = 0
            for _ in range(run):
                out.append((0, 0, 0))
        else:
            out.append((value, 0, 0))
            run -= 1
            while run >= 3:
                chunk = min(run, 6)
                out.append((16, chunk - 3, 2))
                run -= chunk
            for _ in range(run):
                out.append((value, 0, 0))
    return out


def decode_code_lengths(entries: list, total: int) -> list:
    """Inverse of :func:`encode_code_lengths` given decoded (symbol, extra)
    pairs; used by the dynamic-block reader in :mod:`repro.ulp.deflate`."""
    lengths = []
    for symbol, extra in entries:
        if symbol < 16:
            lengths.append(symbol)
        elif symbol == 16:
            if not lengths:
                raise ValueError("repeat code with no previous length")
            lengths.extend([lengths[-1]] * (3 + extra))
        elif symbol == 17:
            lengths.extend([0] * (3 + extra))
        else:
            lengths.extend([0] * (11 + extra))
    if len(lengths) != total:
        raise ValueError("decoded %d code lengths, expected %d" % (len(lengths), total))
    return lengths
