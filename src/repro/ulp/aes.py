"""AES block cipher (FIPS-197), implemented from scratch.

This is the software ground truth for both the on-CPU baseline (which the
paper accelerates with AES-NI) and the SmartDIMM TLS DSA.  Only encryption of
single 16-byte blocks is needed by the GCM counter mode, but decryption is
provided for completeness and for test cross-checks.

The implementation uses the standard byte-oriented table-free formulation:
SubBytes / ShiftRows / MixColumns over the AES field GF(2^8) with the
irreducible polynomial x^8 + x^4 + x^3 + x + 1 (0x11B).
"""

from __future__ import annotations

try:  # optional vector backend for the batched CTR fast path
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

_SBOX = [0] * 256
_INV_SBOX = [0] * 256


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo 0x11B."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sboxes() -> None:
    """Populate the forward and inverse S-boxes from first principles."""
    # Multiplicative inverses via exponentiation by generator 3.
    pow3 = [1] * 256
    log3 = [0] * 256
    value = 1
    for exponent in range(1, 256):
        value = _gf_mul(value, 3)
        pow3[exponent] = value
        log3[value] = exponent
    for byte in range(256):
        inv = 0 if byte == 0 else pow3[255 - log3[byte]]
        # Affine transformation.
        transformed = 0
        for bit in range(8):
            parity = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= parity << bit
        _SBOX[byte] = transformed
        _INV_SBOX[transformed] = byte


_build_sboxes()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

# T-tables: the classic 32-bit-word formulation fusing SubBytes, ShiftRows
# and MixColumns into four 256-entry lookups per column.  Built once from the
# S-box so the fast path stays derived-from-first-principles.
_T0 = [0] * 256
_T1 = [0] * 256
_T2 = [0] * 256
_T3 = [0] * 256


def _build_ttables() -> None:
    for byte in range(256):
        s = _SBOX[byte]
        s2 = _gf_mul(s, 2)
        s3 = _gf_mul(s, 3)
        word = (s2 << 24) | (s << 16) | (s << 8) | s3
        _T0[byte] = word
        _T1[byte] = ((word >> 8) | (word << 24)) & 0xFFFFFFFF
        _T2[byte] = ((word >> 16) | (word << 16)) & 0xFFFFFFFF
        _T3[byte] = ((word >> 24) | (word << 8)) & 0xFFFFFFFF


_build_ttables()

# Vector-form tables for the batched CTR path: the same T-tables and S-box,
# held as uint32 arrays so one fancy-indexing op substitutes a whole batch of
# scalar lookups.  Built once at import when numpy is available.
if _np is not None:
    _NP_T0 = _np.array(_T0, dtype=_np.uint32)
    _NP_T1 = _np.array(_T1, dtype=_np.uint32)
    _NP_T2 = _np.array(_T2, dtype=_np.uint32)
    _NP_T3 = _np.array(_T3, dtype=_np.uint32)
    _NP_SBOX = _np.array(_SBOX, dtype=_np.uint32)

# Below this many blocks the per-call overhead of the vector path exceeds the
# scalar T-table loop; measured crossover is ~16-32 blocks on CPython.
CTR_BATCH_MIN_BLOCKS = 32


class AES:
    """AES-128/192/256 block cipher operating on 16-byte blocks.

    >>> key = bytes(range(16))
    >>> AES(key).decrypt_block(AES(key).encrypt_block(b"0123456789abcdef"))
    b'0123456789abcdef'
    """

    BLOCK_SIZE = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24, or 32 bytes, got %d" % len(key))
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)
        # Word-form round keys for the T-table fast path.
        self._round_key_words = [
            [
                int.from_bytes(bytes(rk[4 * c : 4 * c + 4]), "big")
                for c in range(4)
            ]
            for rk in self._round_keys
        ]

    # -- key schedule -------------------------------------------------------

    def _expand_key(self, key: bytes) -> list:
        """Expand the cipher key into (rounds + 1) 16-byte round keys."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            word = list(words[i - 1])
            if i % nk == 0:
                word = word[1:] + word[:1]
                word = [_SBOX[b] for b in word]
                word[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                word = [_SBOX[b] for b in word]
            words.append([w ^ p for w, p in zip(word, words[i - nk])])
        round_keys = []
        for r in range(self.rounds + 1):
            flat = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    # -- round primitives ---------------------------------------------------

    @staticmethod
    def _add_round_key(state: list, round_key: list) -> list:
        return [s ^ k for s, k in zip(state, round_key)]

    @staticmethod
    def _sub_bytes(state: list) -> list:
        return [_SBOX[b] for b in state]

    @staticmethod
    def _inv_sub_bytes(state: list) -> list:
        return [_INV_SBOX[b] for b in state]

    @staticmethod
    def _shift_rows(state: list) -> list:
        # State is column-major: state[4*c + r] is row r, column c.
        out = list(state)
        for row in range(1, 4):
            for col in range(4):
                out[4 * col + row] = state[4 * ((col + row) % 4) + row]
        return out

    @staticmethod
    def _inv_shift_rows(state: list) -> list:
        out = list(state)
        for row in range(1, 4):
            for col in range(4):
                out[4 * ((col + row) % 4) + row] = state[4 * col + row]
        return out

    @staticmethod
    def _mix_columns(state: list) -> list:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
            out[4 * col + 1] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
            out[4 * col + 2] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
            out[4 * col + 3] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(state: list) -> list:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
            out[4 * col + 1] = _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
            out[4 * col + 2] = _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
            out[4 * col + 3] = _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
        return out

    # -- block operations ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block (T-table fast path)."""
        if len(block) != self.BLOCK_SIZE:
            raise ValueError("AES block must be 16 bytes, got %d" % len(block))
        rk = self._round_key_words
        x0 = int.from_bytes(block[0:4], "big") ^ rk[0][0]
        x1 = int.from_bytes(block[4:8], "big") ^ rk[0][1]
        x2 = int.from_bytes(block[8:12], "big") ^ rk[0][2]
        x3 = int.from_bytes(block[12:16], "big") ^ rk[0][3]
        for r in range(1, self.rounds):
            k = rk[r]
            y0 = (_T0[x0 >> 24] ^ _T1[(x1 >> 16) & 0xFF] ^ _T2[(x2 >> 8) & 0xFF]
                  ^ _T3[x3 & 0xFF] ^ k[0])
            y1 = (_T0[x1 >> 24] ^ _T1[(x2 >> 16) & 0xFF] ^ _T2[(x3 >> 8) & 0xFF]
                  ^ _T3[x0 & 0xFF] ^ k[1])
            y2 = (_T0[x2 >> 24] ^ _T1[(x3 >> 16) & 0xFF] ^ _T2[(x0 >> 8) & 0xFF]
                  ^ _T3[x1 & 0xFF] ^ k[2])
            y3 = (_T0[x3 >> 24] ^ _T1[(x0 >> 16) & 0xFF] ^ _T2[(x1 >> 8) & 0xFF]
                  ^ _T3[x2 & 0xFF] ^ k[3])
            x0, x1, x2, x3 = y0, y1, y2, y3
        k = rk[self.rounds]
        out0 = ((_SBOX[x0 >> 24] << 24) | (_SBOX[(x1 >> 16) & 0xFF] << 16)
                | (_SBOX[(x2 >> 8) & 0xFF] << 8) | _SBOX[x3 & 0xFF]) ^ k[0]
        out1 = ((_SBOX[x1 >> 24] << 24) | (_SBOX[(x2 >> 16) & 0xFF] << 16)
                | (_SBOX[(x3 >> 8) & 0xFF] << 8) | _SBOX[x0 & 0xFF]) ^ k[1]
        out2 = ((_SBOX[x2 >> 24] << 24) | (_SBOX[(x3 >> 16) & 0xFF] << 16)
                | (_SBOX[(x0 >> 8) & 0xFF] << 8) | _SBOX[x1 & 0xFF]) ^ k[2]
        out3 = ((_SBOX[x3 >> 24] << 24) | (_SBOX[(x0 >> 16) & 0xFF] << 16)
                | (_SBOX[(x1 >> 8) & 0xFF] << 8) | _SBOX[x2 & 0xFF]) ^ k[3]
        return (
            out0.to_bytes(4, "big") + out1.to_bytes(4, "big")
            + out2.to_bytes(4, "big") + out3.to_bytes(4, "big")
        )

    def encrypt_ctr_blocks(self, prefix: bytes, start_counter: int, nblocks: int) -> bytes:
        """Keystream for `nblocks` counter blocks ``prefix || counter``.

        Counter values are ``(start_counter + i) mod 2^32`` — GCM's inc32
        semantics.  Large batches run through the vectorised T-table path
        (one numpy gather per table per round for the whole batch); small
        batches and numpy-less environments fall back to the scalar loop.
        Output is bit-identical either way.
        """
        if len(prefix) != 12:
            raise ValueError("counter prefix must be 12 bytes, got %d" % len(prefix))
        if nblocks <= 0:
            return b""
        if _np is None or nblocks < CTR_BATCH_MIN_BLOCKS:
            out = bytearray()
            for i in range(nblocks):
                counter = (start_counter + i) & 0xFFFFFFFF
                out += self.encrypt_block(prefix + counter.to_bytes(4, "big"))
            return bytes(out)
        return self._encrypt_ctr_vector(prefix, start_counter, nblocks)

    def _encrypt_ctr_vector(self, prefix: bytes, start_counter: int, nblocks: int) -> bytes:
        rk = self._round_key_words
        w0 = int.from_bytes(prefix[0:4], "big")
        w1 = int.from_bytes(prefix[4:8], "big")
        w2 = int.from_bytes(prefix[8:12], "big")
        counters = (
            (_np.arange(nblocks, dtype=_np.uint64) + (start_counter & 0xFFFFFFFF))
            & 0xFFFFFFFF
        ).astype(_np.uint32)
        x0 = _np.full(nblocks, (w0 ^ rk[0][0]) & 0xFFFFFFFF, dtype=_np.uint32)
        x1 = _np.full(nblocks, (w1 ^ rk[0][1]) & 0xFFFFFFFF, dtype=_np.uint32)
        x2 = _np.full(nblocks, (w2 ^ rk[0][2]) & 0xFFFFFFFF, dtype=_np.uint32)
        x3 = counters ^ _np.uint32(rk[0][3])
        for r in range(1, self.rounds):
            k = rk[r]
            y0 = (_NP_T0[x0 >> 24] ^ _NP_T1[(x1 >> 16) & 0xFF]
                  ^ _NP_T2[(x2 >> 8) & 0xFF] ^ _NP_T3[x3 & 0xFF] ^ _np.uint32(k[0]))
            y1 = (_NP_T0[x1 >> 24] ^ _NP_T1[(x2 >> 16) & 0xFF]
                  ^ _NP_T2[(x3 >> 8) & 0xFF] ^ _NP_T3[x0 & 0xFF] ^ _np.uint32(k[1]))
            y2 = (_NP_T0[x2 >> 24] ^ _NP_T1[(x3 >> 16) & 0xFF]
                  ^ _NP_T2[(x0 >> 8) & 0xFF] ^ _NP_T3[x1 & 0xFF] ^ _np.uint32(k[2]))
            y3 = (_NP_T0[x3 >> 24] ^ _NP_T1[(x0 >> 16) & 0xFF]
                  ^ _NP_T2[(x1 >> 8) & 0xFF] ^ _NP_T3[x2 & 0xFF] ^ _np.uint32(k[3]))
            x0, x1, x2, x3 = y0, y1, y2, y3
        k = rk[self.rounds]
        out = _np.empty((nblocks, 4), dtype=_np.uint32)
        out[:, 0] = ((_NP_SBOX[x0 >> 24] << 24) | (_NP_SBOX[(x1 >> 16) & 0xFF] << 16)
                     | (_NP_SBOX[(x2 >> 8) & 0xFF] << 8) | _NP_SBOX[x3 & 0xFF]) ^ _np.uint32(k[0])
        out[:, 1] = ((_NP_SBOX[x1 >> 24] << 24) | (_NP_SBOX[(x2 >> 16) & 0xFF] << 16)
                     | (_NP_SBOX[(x3 >> 8) & 0xFF] << 8) | _NP_SBOX[x0 & 0xFF]) ^ _np.uint32(k[1])
        out[:, 2] = ((_NP_SBOX[x2 >> 24] << 24) | (_NP_SBOX[(x3 >> 16) & 0xFF] << 16)
                     | (_NP_SBOX[(x0 >> 8) & 0xFF] << 8) | _NP_SBOX[x1 & 0xFF]) ^ _np.uint32(k[2])
        out[:, 3] = ((_NP_SBOX[x3 >> 24] << 24) | (_NP_SBOX[(x0 >> 16) & 0xFF] << 16)
                     | (_NP_SBOX[(x1 >> 8) & 0xFF] << 8) | _NP_SBOX[x2 & 0xFF]) ^ _np.uint32(k[3])
        return out.astype(">u4").tobytes()

    def encrypt_block_reference(self, block: bytes) -> bytes:
        """Round-primitive reference path (cross-checked against the
        T-table path in the test suite)."""
        if len(block) != self.BLOCK_SIZE:
            raise ValueError("AES block must be 16 bytes, got %d" % len(block))
        state = self._add_round_key(list(block), self._round_keys[0])
        for r in range(1, self.rounds):
            state = self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = self._add_round_key(state, self._round_keys[r])
        state = self._sub_bytes(state)
        state = self._shift_rows(state)
        state = self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != self.BLOCK_SIZE:
            raise ValueError("AES block must be 16 bytes, got %d" % len(block))
        state = self._add_round_key(list(block), self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = self._inv_sub_bytes(state)
            state = self._add_round_key(state, self._round_keys[r])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = self._inv_sub_bytes(state)
        state = self._add_round_key(state, self._round_keys[0])
        return bytes(state)
