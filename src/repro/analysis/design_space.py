"""Fig. 13: the ULP-processing design-space comparison.

The paper compares CPU, SmartNIC (autonomous offload), SmartNIC (TOE),
PCIe lookaside, and SmartDIMM across qualitative criteria.  Rather than
hard-coding the figure's verdicts, each criterion here is *derived* from a
model scenario (e.g. "performance under high LLC contention" runs the
server model at high background pressure and ranks the placements), so the
figure regenerates from the same machinery as the quantitative results.
Scores are 0-3 (higher is better) to mirror the figure's filled-circle
scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.server import Placement, ServerModel, Ulp, WorkloadSpec

CRITERIA = [
    "low_llc_contention_performance",
    "high_llc_contention_performance",
    "transport_compatibility",
    "ulp_diversity",
    "loss_reorder_resilience",
    "transport_flexibility",
]

OPTIONS = ["cpu", "smartnic_autonomous", "smartnic_toe", "pcie_lookaside", "smartdimm"]


@dataclass
class Score:
    option: str
    criterion: str
    score: int
    rationale: str


def _performance_to_scores(results: dict) -> dict:
    """Map absolute performance onto the 0-3 scale by bands relative to the
    best option: near-ties score alike (ranking alone would exaggerate a
    few-percent difference into a full circle on the figure)."""
    best = max(results.values())
    scores = {}
    for option, value in results.items():
        fraction = value / best
        if fraction >= 0.93:
            scores[option] = 3
        elif fraction >= 0.78:
            scores[option] = 2
        elif fraction >= 0.55:
            scores[option] = 1
        else:
            scores[option] = 0
    return scores


class DesignSpace:
    """Derives the Fig. 13 matrix from model scenarios."""

    def __init__(self):
        self._scores = {}
        self._rationales = {}
        self._evaluate()

    # -- scenario-driven criteria -------------------------------------------------------

    def _contention_ordering(self, connections: int, background: float) -> list:
        results = {}
        placement_map = {
            "cpu": Placement.CPU,
            "smartnic_autonomous": Placement.SMARTNIC,
            "pcie_lookaside": Placement.QUICKASSIST,
            "smartdimm": Placement.SMARTDIMM,
        }
        for name, placement in placement_map.items():
            spec = WorkloadSpec(
                ulp=Ulp.TLS,
                placement=placement,
                message_bytes=16384,
                connections=connections,
                background_pressure_bytes=background,
            )
            results[name] = ServerModel(spec).solve().rps
        # A TOE performs like the autonomous NIC for raw throughput.
        results["smartnic_toe"] = results["smartnic_autonomous"] * 1.02
        return results

    def _evaluate(self) -> None:
        # Performance at low contention: few connections, calm cache — the
        # regime where "it is optimal to run ULPs on the CPU" (Sec. VI);
        # CompCpy's flushes run at the dirty-line price here.
        low = self._contention_ordering(connections=48, background=0.5e6)
        self._set_from_results(
            "low_llc_contention_performance",
            low,
            "server-model RPS, 48 connections, 0.5MB background pressure",
        )
        # Performance at high contention: the paper's evaluation regime.
        high = self._contention_ordering(connections=1024, background=30e6)
        self._set_from_results(
            "high_llc_contention_performance",
            high,
            "server-model RPS, 1024 connections, 30MB background pressure",
        )
        # Transport compatibility: can the placement sit under TCP *and* UDP
        # without assumptions?  Autonomous NIC offload needs in-order TCP
        # byte streams; a TOE replaces the transport outright.
        self._scores["transport_compatibility"] = {
            "cpu": 3,
            "smartdimm": 3,
            "pcie_lookaside": 3,
            "smartnic_autonomous": 1,
            "smartnic_toe": 1,
        }
        self._rationales["transport_compatibility"] = (
            "host-side placements see messages above the transport; "
            "NIC placements depend on transport byte-stream state"
        )
        # ULP diversity: non-size-preserving and non-incrementally-computable
        # ULPs.  Autonomous NICs must preserve payload size (Observation 1).
        self._scores["ulp_diversity"] = {
            "cpu": 3,
            "pcie_lookaside": 3,
            "smartdimm": 2,  # needs incremental computability + page granularity
            "smartnic_toe": 2,
            "smartnic_autonomous": 1,
        }
        self._rationales["ulp_diversity"] = (
            "size-preservation requirement excludes compression from "
            "autonomous NIC offload; SmartDIMM needs incremental ULPs"
        )
        # Loss/reorder resilience: from the Fig. 2 machinery — the NIC
        # resyncs on every retransmission, the others do not care.
        self._scores["loss_reorder_resilience"] = {
            "cpu": 3,
            "smartdimm": 3,
            "pcie_lookaside": 3,
            "smartnic_toe": 2,
            "smartnic_autonomous": 1,
        }
        self._rationales["loss_reorder_resilience"] = (
            "TCP sim: retransmissions force CPU fallback + NIC resync "
            "only for autonomous NIC offload"
        )
        # Transport-layer flexibility: can the kernel's TCP evolve (SACK
        # fixes, CVE patches) without touching the accelerator?
        self._scores["transport_flexibility"] = {
            "cpu": 3,
            "smartdimm": 3,
            "pcie_lookaside": 3,
            "smartnic_autonomous": 2,
            "smartnic_toe": 0,
        }
        self._rationales["transport_flexibility"] = (
            "TOEs freeze layer-4 in hardware; autonomous offload tracks "
            "but does not own it; host placements leave it untouched"
        )

    def _set_from_results(self, criterion: str, results: dict, rationale: str) -> None:
        self._scores[criterion] = _performance_to_scores(results)
        self._rationales[criterion] = rationale

    # -- queries --------------------------------------------------------------------------

    def score(self, option: str, criterion: str) -> int:
        """The 0-3 score of one option on one criterion."""
        return self._scores[criterion][option]

    def rationale(self, criterion: str) -> str:
        """How the criterion's scores were derived."""
        return self._rationales[criterion]

    def matrix(self) -> list:
        """Every (option, criterion) score as a flat list."""
        return [
            Score(option, criterion, self._scores[criterion][option], self._rationales[criterion])
            for criterion in CRITERIA
            for option in OPTIONS
        ]

    def totals(self) -> dict:
        """Summed scores per option (the figure's overall verdict)."""
        return {
            option: sum(self._scores[c][option] for c in CRITERIA) for option in OPTIONS
        }
