"""Analysis models: power/area estimation and the design-space comparison.

* :mod:`repro.analysis.power` — activity-based power and FPGA-resource
  model for the buffer-device logic (Sec. VII-D).
* :mod:`repro.analysis.design_space` — the qualitative criteria matrix of
  Fig. 13, with each score derived from a model scenario rather than
  asserted.
"""

from repro.analysis.power import PowerModel, PowerReport
from repro.analysis.design_space import DesignSpace, CRITERIA

__all__ = ["PowerModel", "PowerReport", "DesignSpace", "CRITERIA"]
