"""Terminal figure renderers: the no-network analogue of the artifact's
gnuplot scripts.

Each renderer turns simulation output into an ASCII figure plus a CSV dump
so the paper's plots can be regenerated (and eyeballed) without any
plotting dependencies:

* :func:`render_scatter` — the Fig. 9 rdCAS/wrCAS address-vs-time cloud.
* :func:`render_timeline` — the Fig. 10 scratchpad-occupancy curves.
* :func:`render_bars` — the Figs. 11/12 grouped normalised bars.
* :func:`to_csv` — the raw series for external tooling.
"""

from __future__ import annotations


def to_csv(header: list, rows: list) -> str:
    """Minimal CSV serialisation (no quoting needs in our data)."""
    lines = [",".join(str(h) for h in header)]
    for row in rows:
        lines.append(",".join(str(value) for value in row))
    return "\n".join(lines) + "\n"


def render_scatter(
    points: list,
    width: int = 72,
    height: int = 20,
    glyphs: dict = None,
) -> str:
    """Plot (x, y, series) points on a character grid.

    For Fig. 9, x is the command cycle, y the physical address, and the
    series is "rdCAS" (rendered ``r``) or "wrCAS" (rendered ``w``).
    """
    if not points:
        return "(no points)\n"
    glyphs = glyphs or {"rdCAS": "r", "wrCAS": "w"}
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1)
    y_span = max(y_hi - y_lo, 1)
    grid = [[" "] * width for _ in range(height)]
    for x, y, series in points:
        column = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        glyph = glyphs.get(series, "?")
        # Later glyphs win on collision unless a write is already there
        # (writes are sparser and the interesting signal).
        if grid[row][column] != "w":
            grid[row][column] = glyph
    lines = ["%s" % "".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(
        "x: %d..%d   y: 0x%x..0x%x   glyphs: %s"
        % (x_lo, x_hi, y_lo, y_hi, ", ".join("%s=%s" % kv for kv in glyphs.items()))
    )
    return "\n".join(lines) + "\n"


def render_timeline(series: dict, width: int = 64, height: int = 12) -> str:
    """Plot one or more (label -> [values]) curves on a shared y axis.

    For Fig. 10 each curve is a scratchpad-occupancy sample sequence under
    one LLC provisioning.
    """
    if not series or all(not values for values in series.values()):
        return "(no samples)\n"
    peak = max(max(values) for values in series.values() if values) or 1
    glyphs = "abcdefgh"
    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        if not values:
            continue
        glyph = glyphs[index % len(glyphs)]
        for i, value in enumerate(values):
            column = int(i / max(len(values) - 1, 1) * (width - 1))
            row = height - 1 - int(value / peak * (height - 1))
            grid[row][column] = glyph
    lines = ["%s" % "".join(row) for row in grid]
    lines.append("-" * width)
    legend = "   ".join(
        "%s=%s" % (glyphs[i % len(glyphs)], label) for i, label in enumerate(series)
    )
    lines.append("peak=%d   %s" % (peak, legend))
    return "\n".join(lines) + "\n"


def render_bars(groups: dict, width: int = 40, reference: float = 1.0) -> str:
    """Grouped horizontal bars, normalised around `reference`.

    For Figs. 11/12: groups maps a group label (e.g. "TLS 4KB") to an
    ordered {placement: value} dict; a ``|`` marks the reference line.
    """
    lines = []
    peak = max(
        (value for bars in groups.values() for value in bars.values()), default=1.0
    )
    peak = max(peak, reference)
    for group, bars in groups.items():
        lines.append(group)
        for label, value in bars.items():
            filled = int(value / peak * width)
            marker = int(reference / peak * width)
            bar = ["#" if i < filled else " " for i in range(width)]
            if 0 <= marker < width:
                bar[marker] = "|"
            lines.append("  %-12s %s %.2f" % (label, "".join(bar), value))
    return "\n".join(lines) + "\n"
