"""Aggregate benchmark results into one reproduction report.

Every benchmark under ``benchmarks/`` writes its paper-style rows to
``benchmarks/results/<name>.txt``; this module stitches them into a single
document ordered like the paper's evaluation section, so a reviewer reads
one file instead of twenty.

Usage::

    python -m repro report            # print to stdout
    python -m repro report -o FILE    # write to FILE
"""

from __future__ import annotations

import os

#: Paper ordering of the result sections, with titles.
SECTIONS = [
    ("fig02_smartnic_drops", "Fig. 2 — SmartNIC TLS offload under packet drops"),
    ("fig03_https_membw", "Fig. 3 — HTTPS memory bandwidth vs connections"),
    ("fig09_memory_trace", "Fig. 9 — CompCpy command traces"),
    ("fig10_scratchpad", "Fig. 10 — scratchpad self-recycle equilibrium"),
    ("fig11_tls_performance", "Fig. 11 — TLS across placements"),
    ("fig12_compression_performance", "Fig. 12 — compression across placements"),
    ("table1_isolation", "Table I — co-run isolation"),
    ("fig13_design_space", "Fig. 13 — design-space comparison"),
    ("claim_flush_cost", "Claim (Sec. IV-A) — flush cost vs residency"),
    ("claim_rdwr_slack", "Claim (Sec. IV-D) — read/write slack"),
    ("claim_cuckoo", "Claim (Sec. IV-C) — cuckoo translation table"),
    ("power_area", "Sec. VII-D — power and area"),
    ("ablation_scratchpad_size", "Ablation — scratchpad sizing"),
    ("ablation_ordered_copy", "Ablation — ordered CompCpy"),
    ("ablation_deflate_window", "Ablation — deflate window"),
    ("ablation_adaptive_threshold", "Ablation — adaptive threshold"),
    ("ablation_interleaving", "Ablation — channel interleaving"),
    ("ablation_direct_offload", "Extension — direct offload (new DDR commands)"),
    ("ablation_compute_dma", "Extension — Compute DMA"),
    ("ablation_multichannel", "Extension — multi-channel interleaved TLS"),
    ("projection_direct_offload", "Projection — direct offload, end to end"),
    ("sensitivity", "Sensitivity — cost-constant perturbation grid"),
]


def default_results_dir() -> str:
    """The repo's benchmarks/results directory."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    return os.path.join(here, "benchmarks", "results")


def build_report(results_dir: str = None) -> str:
    """Assemble the aggregate report; missing sections are flagged."""
    results_dir = results_dir or default_results_dir()
    out = [
        "=" * 72,
        "SmartDIMM reproduction — aggregated benchmark results",
        "(regenerate with: pytest benchmarks/ --benchmark-only)",
        "=" * 72,
    ]
    missing = []
    for name, title in SECTIONS:
        path = os.path.join(results_dir, name + ".txt")
        out.append("")
        out.append("-" * 72)
        out.append(title)
        out.append("-" * 72)
        if os.path.exists(path):
            with open(path) as handle:
                out.append(handle.read().rstrip())
        else:
            out.append("[not yet generated: run pytest benchmarks/ --benchmark-only]")
            missing.append(name)
    out.append("")
    out.append("=" * 72)
    if missing:
        out.append("missing sections: " + ", ".join(missing))
    else:
        out.append("all %d sections present" % len(SECTIONS))
    return "\n".join(out) + "\n"


def coverage(results_dir: str = None) -> tuple:
    """(present, total) result-section counts."""
    results_dir = results_dir or default_results_dir()
    present = sum(
        1
        for name, _ in SECTIONS
        if os.path.exists(os.path.join(results_dir, name + ".txt"))
    )
    return present, len(SECTIONS)
