"""Activity-based power and area model for SmartDIMM's buffer device.

Calibrated against the paper's Vivado numbers (Sec. VII-D):

* 4.78 W dynamic power when the DDR channel is fully utilised;
* ~0.92 W average added power across the benchmarks, which run the channel
  below 30 % utilisation;
* the TLS DSA occupies ~21.8 % of the AxDIMM FPGA's resources.

The model decomposes dynamic power into per-component activity terms so
sizing sweeps (scratchpad, translation table, deflate window) move the
estimate in physically sensible directions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PowerReport:
    dynamic_watts: float
    static_watts: float
    breakdown: dict

    @property
    def total_watts(self) -> float:
        return self.dynamic_watts + self.static_watts


@dataclass
class FpgaResources:
    luts: int
    brams: int
    dsps: int

    def utilisation(self, available: "FpgaResources") -> float:
        """Fraction of the budget consumed (worst resource dimension)."""
        return max(
            self.luts / available.luts,
            self.brams / available.brams,
            self.dsps / available.dsps,
        )


#: AxDIMM-class FPGA budget (Kintex UltraScale-ish).
AXDIMM_FPGA = FpgaResources(luts=331_000, brams=1_080, dsps=2_760)


class PowerModel:
    """Per-component dynamic-power coefficients at full channel activity.

    The coefficients sum to 4.78 W at 100 % channel utilisation with both
    DSAs instantiated, matching the Vivado estimate.
    """

    # Watts at full activity.
    DDR_PHY_W = 1.30
    MIG_PHY_W = 0.95
    ARBITER_W = 0.28
    BANK_TABLE_W = 0.05
    TRANSLATION_TABLE_W = 0.22  # cuckoo reads every cycle; CAM would be ~4x
    TRANSLATION_CAM_ALTERNATIVE_W = 0.88
    SCRATCHPAD_W_PER_MB = 0.035
    CONFIG_MEMORY_W_PER_MB = 0.030
    TLS_DSA_W = 0.95
    DEFLATE_DSA_W = 0.51
    STATIC_W = 1.9  # FPGA leakage + clocking, always on

    def __init__(self, scratchpad_mb: float = 8.0, config_mb: float = 8.0):
        self.scratchpad_mb = scratchpad_mb
        self.config_mb = config_mb

    def full_activity_watts(self, tls: bool = True, deflate: bool = True) -> float:
        """Dynamic power at 100% channel utilisation (the 4.78 W point)."""
        return sum(self._breakdown(1.0, tls, deflate).values())

    def _breakdown(self, channel_utilisation: float, tls: bool, deflate: bool) -> dict:
        u = min(max(channel_utilisation, 0.0), 1.0)
        parts = {
            "ddr_phy": self.DDR_PHY_W * u,
            "mig_phy": self.MIG_PHY_W * u,
            "arbiter": self.ARBITER_W * u,
            "bank_table": self.BANK_TABLE_W * u,
            "translation_table": self.TRANSLATION_TABLE_W * u,
            "scratchpad": self.SCRATCHPAD_W_PER_MB * self.scratchpad_mb * u,
            "config_memory": self.CONFIG_MEMORY_W_PER_MB * self.config_mb * u,
        }
        if tls:
            parts["tls_dsa"] = self.TLS_DSA_W * u
        if deflate:
            parts["deflate_dsa"] = self.DEFLATE_DSA_W * u
        return parts

    def report(
        self, channel_utilisation: float, tls: bool = True, deflate: bool = True
    ) -> PowerReport:
        """Power estimate at a given channel utilisation."""
        breakdown = self._breakdown(channel_utilisation, tls, deflate)
        return PowerReport(
            dynamic_watts=sum(breakdown.values()),
            static_watts=self.STATIC_W,
            breakdown=breakdown,
        )

    # -- area ---------------------------------------------------------------------------

    def tls_dsa_resources(self) -> FpgaResources:
        """TLS offload logic: AES pipelines, GF multipliers, GHASH."""
        return FpgaResources(luts=68_000, brams=96, dsps=602)

    def deflate_dsa_resources(self, window_bytes: int = 8) -> FpgaResources:
        """Deflate DSA; logic grows superlinearly with the parallelisation
        window (Sec. V-B: 'exponentially raises the memory requirements and
        the logic complexity')."""
        scale = (window_bytes / 8.0) ** 1.6
        return FpgaResources(
            luts=int(41_000 * scale), brams=int(160 * scale), dsps=int(48 * scale)
        )

    def tls_utilisation_fraction(self) -> float:
        """Fraction of the AxDIMM FPGA used by the TLS offload (~21.8%)."""
        return self.tls_dsa_resources().utilisation(AXDIMM_FPGA)
