"""Physical-address ↔ DRAM-coordinate mapping.

The buffer device sees only (bank group, bank, row, column) plus chip
select; to decide whether a CAS targets an acceleration range it must
*regenerate* the physical address (the Addr Remap module of Fig. 5).  That
forces the mapping to be invertible, which this module guarantees by
construction: the address is a pure bit-field concatenation.

Two interleaving modes from Sec. V-D are supported:

* ``SINGLE_CHANNEL`` — 4 KB pages land wholly on one DIMM (AxDIMM's mode;
  required for non-size-preserving ULPs like deflate).
* ``CACHELINE`` — consecutive 64-byte lines round-robin across channels
  (the common server default; fine for size-preserving ULPs like AES-GCM
  provided every channel's DIMM holds the config, Sec. V-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.commands import CACHELINE_SIZE


class InterleaveMode(enum.Enum):
    """How consecutive cachelines map to memory channels (Sec. V-D)."""

    SINGLE_CHANNEL = "single_channel"
    CACHELINE = "cacheline"


@dataclass(frozen=True)
class DramCoordinate:
    """Where a 64-byte line lives inside the memory system."""

    channel: int
    bank_group: int
    bank: int
    row: int
    column: int

    def bank_index(self, banks_per_group: int) -> int:
        """Flat bank id used to index the bank table."""
        return self.bank_group * banks_per_group + self.bank


def _bits_for(value: int) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError("%d is not a positive power of two" % value)
    return value.bit_length() - 1


class AddressMapping:
    """Invertible bit-field mapping between physical addresses and coordinates.

    Layout (most significant to least):
    ``row | bank_group | bank | column | [channel] | line offset``
    with the channel bits present only in CACHELINE mode (placed just above
    the 6 offset bits so consecutive lines alternate channels).
    """

    def __init__(
        self,
        channels: int = 1,
        bank_groups: int = 4,
        banks_per_group: int = 4,
        rows: int = 1 << 16,
        columns_per_row: int = 128,
        interleave: InterleaveMode = InterleaveMode.SINGLE_CHANNEL,
    ):
        self.channels = channels
        self.bank_groups = bank_groups
        self.banks_per_group = banks_per_group
        self.rows = rows
        self.columns_per_row = columns_per_row
        self.interleave = interleave
        self._offset_bits = _bits_for(CACHELINE_SIZE)
        self._channel_bits = _bits_for(channels) if channels > 1 else 0
        self._column_bits = _bits_for(columns_per_row)
        self._bank_bits = _bits_for(banks_per_group)
        self._bg_bits = _bits_for(bank_groups)
        self._row_bits = _bits_for(rows)
        if interleave is InterleaveMode.SINGLE_CHANNEL and channels > 1:
            # Channel bits sit above everything else: each channel owns a
            # contiguous region.
            pass

    @property
    def capacity_per_channel(self) -> int:
        return (
            self.rows
            * self.bank_groups
            * self.banks_per_group
            * self.columns_per_row
            * CACHELINE_SIZE
        )

    @property
    def total_capacity(self) -> int:
        return self.capacity_per_channel * self.channels

    # -- forward mapping -----------------------------------------------------

    def decode(self, address: int) -> DramCoordinate:
        """Physical address -> DRAM coordinate (line-aligned)."""
        if not 0 <= address < self.total_capacity:
            raise ValueError("address 0x%x out of range" % address)
        bits = address >> self._offset_bits
        if self.interleave is InterleaveMode.CACHELINE and self.channels > 1:
            channel = bits & (self.channels - 1)
            bits >>= self._channel_bits
        else:
            channel = 0
        column = bits & (self.columns_per_row - 1)
        bits >>= self._column_bits
        bank = bits & (self.banks_per_group - 1)
        bits >>= self._bank_bits
        bank_group = bits & (self.bank_groups - 1)
        bits >>= self._bg_bits
        row = bits & (self.rows - 1)
        bits >>= self._row_bits
        if self.interleave is InterleaveMode.SINGLE_CHANNEL and self.channels > 1:
            channel = bits & (self.channels - 1)
        return DramCoordinate(
            channel=channel, bank_group=bank_group, bank=bank, row=row, column=column
        )

    # -- inverse mapping (the Addr Remap module) ------------------------------

    def encode(self, coordinate: DramCoordinate) -> int:
        """DRAM coordinate -> line-aligned physical address."""
        bits = coordinate.row
        if self.interleave is InterleaveMode.SINGLE_CHANNEL and self.channels > 1:
            bits |= coordinate.channel << self._row_bits
        bits = (bits << self._bg_bits) | coordinate.bank_group
        bits = (bits << self._bank_bits) | coordinate.bank
        bits = (bits << self._column_bits) | coordinate.column
        if self.interleave is InterleaveMode.CACHELINE and self.channels > 1:
            bits = (bits << self._channel_bits) | coordinate.channel
        return bits << self._offset_bits

    def page_number(self, address: int) -> int:
        """4 KB page number containing `address`."""
        return address >> 12

    def lines_of_page(self, page_number: int) -> range:
        """Line-aligned addresses covering one 4 KB page."""
        base = page_number << 12
        return range(base, base + 4096, CACHELINE_SIZE)
