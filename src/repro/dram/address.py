"""Physical-address ↔ DRAM-coordinate mapping.

The buffer device sees only (bank group, bank, row, column) plus chip
select; to decide whether a CAS targets an acceleration range it must
*regenerate* the physical address (the Addr Remap module of Fig. 5).  That
forces the mapping to be invertible, which this module guarantees by
construction: the address is a pure bit-field concatenation.

Two interleaving modes from Sec. V-D are supported:

* ``SINGLE_CHANNEL`` — 4 KB pages land wholly on one DIMM (AxDIMM's mode;
  required for non-size-preserving ULPs like deflate).
* ``CACHELINE`` — consecutive 64-byte lines round-robin across channels
  (the common server default; fine for size-preserving ULPs like AES-GCM
  provided every channel's DIMM holds the config, Sec. V-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.commands import CACHELINE_SIZE


class InterleaveMode(enum.Enum):
    """How consecutive cachelines map to memory channels (Sec. V-D)."""

    SINGLE_CHANNEL = "single_channel"
    CACHELINE = "cacheline"


@dataclass(frozen=True, slots=True)
class DramCoordinate:
    """Where a 64-byte line lives inside the memory system."""

    channel: int
    bank_group: int
    bank: int
    row: int
    column: int

    def bank_index(self, banks_per_group: int) -> int:
        """Flat bank id used to index the bank table."""
        return self.bank_group * banks_per_group + self.bank


def _bits_for(value: int) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError("%d is not a positive power of two" % value)
    return value.bit_length() - 1


class AddressMapping:
    """Invertible bit-field mapping between physical addresses and coordinates.

    Layout (most significant to least):
    ``row | bank_group | bank | column | [channel] | line offset``
    with the channel bits present only in CACHELINE mode (placed just above
    the 6 offset bits so consecutive lines alternate channels).
    """

    def __init__(
        self,
        channels: int = 1,
        bank_groups: int = 4,
        banks_per_group: int = 4,
        rows: int = 1 << 16,
        columns_per_row: int = 128,
        interleave: InterleaveMode = InterleaveMode.SINGLE_CHANNEL,
    ):
        self.channels = channels
        self.bank_groups = bank_groups
        self.banks_per_group = banks_per_group
        self.rows = rows
        self.columns_per_row = columns_per_row
        self.interleave = interleave
        self._offset_bits = _bits_for(CACHELINE_SIZE)
        self._channel_bits = _bits_for(channels) if channels > 1 else 0
        self._column_bits = _bits_for(columns_per_row)
        self._bank_bits = _bits_for(banks_per_group)
        self._bg_bits = _bits_for(bank_groups)
        self._row_bits = _bits_for(rows)
        # Precomputed absolute shift/mask per field so decode() is a flat
        # chain of and/shift with no per-call recomputation.  Field order
        # (LSB up): offset | [channel if CACHELINE] | column | bank |
        # bank_group | row | [channel if SINGLE_CHANNEL].
        shift = self._offset_bits
        self._chan_lo_shift = shift  # CACHELINE-mode channel position
        if interleave is InterleaveMode.CACHELINE and channels > 1:
            shift += self._channel_bits
        self._col_shift = shift
        self._col_mask = columns_per_row - 1
        shift += self._column_bits
        self._bank_shift = shift
        self._bank_mask = banks_per_group - 1
        shift += self._bank_bits
        self._bg_shift = shift
        self._bg_mask = bank_groups - 1
        shift += self._bg_bits
        self._row_shift = shift
        self._row_mask = rows - 1
        shift += self._row_bits
        self._chan_hi_shift = shift  # SINGLE_CHANNEL-mode channel position
        self._chan_mask = channels - 1 if channels > 1 else 0
        self._chan_is_low = interleave is InterleaveMode.CACHELINE and channels > 1
        self._chan_is_high = (
            interleave is InterleaveMode.SINGLE_CHANNEL and channels > 1
        )
        # Per-page decode cache: page number -> tuple of LINES_PER_PAGE
        # coordinates.  Pages are revisited constantly (64 lines each) and
        # the working set is small, so a bounded dict cleared on overflow
        # beats LRU bookkeeping.
        self._page_cache = {}
        self._page_cache_limit = 4096
        self._run_cache = {}

    @property
    def capacity_per_channel(self) -> int:
        return (
            self.rows
            * self.bank_groups
            * self.banks_per_group
            * self.columns_per_row
            * CACHELINE_SIZE
        )

    @property
    def total_capacity(self) -> int:
        return self.capacity_per_channel * self.channels

    # -- forward mapping -----------------------------------------------------

    def decode(self, address: int) -> DramCoordinate:
        """Physical address -> DRAM coordinate (line-aligned).

        Fast path: a flat shift/mask chain over fields precomputed in
        ``__init__``.  Equivalence with :meth:`decode_reference` is
        covered by tests.
        """
        if not 0 <= address < self.total_capacity:
            raise ValueError("address 0x%x out of range" % address)
        if self._chan_is_low:
            channel = (address >> self._chan_lo_shift) & self._chan_mask
        elif self._chan_is_high:
            channel = (address >> self._chan_hi_shift) & self._chan_mask
        else:
            channel = 0
        return DramCoordinate(
            channel=channel,
            bank_group=(address >> self._bg_shift) & self._bg_mask,
            bank=(address >> self._bank_shift) & self._bank_mask,
            row=(address >> self._row_shift) & self._row_mask,
            column=(address >> self._col_shift) & self._col_mask,
        )

    def decode_reference(self, address: int) -> DramCoordinate:
        """Reference decoder: the original sequential shift chain."""
        if not 0 <= address < self.total_capacity:
            raise ValueError("address 0x%x out of range" % address)
        bits = address >> self._offset_bits
        if self.interleave is InterleaveMode.CACHELINE and self.channels > 1:
            channel = bits & (self.channels - 1)
            bits >>= self._channel_bits
        else:
            channel = 0
        column = bits & (self.columns_per_row - 1)
        bits >>= self._column_bits
        bank = bits & (self.banks_per_group - 1)
        bits >>= self._bank_bits
        bank_group = bits & (self.bank_groups - 1)
        bits >>= self._bg_bits
        row = bits & (self.rows - 1)
        bits >>= self._row_bits
        if self.interleave is InterleaveMode.SINGLE_CHANNEL and self.channels > 1:
            channel = bits & (self.channels - 1)
        return DramCoordinate(
            channel=channel, bank_group=bank_group, bank=bank, row=row, column=column
        )

    def page_coordinates(self, page_number: int) -> tuple:
        """Coordinates of every line of a 4 KB page, cached per page."""
        cached = self._page_cache.get(page_number)
        if cached is None:
            if len(self._page_cache) >= self._page_cache_limit:
                self._page_cache.clear()
            decode = self.decode
            cached = tuple(
                decode(address) for address in self.lines_of_page(page_number)
            )
            self._page_cache[page_number] = cached
        return cached

    def line_coordinate(self, address: int) -> DramCoordinate:
        """Cached decode: coordinate of the line containing `address`."""
        return self.page_coordinates(address >> 12)[(address >> 6) & 63]

    def page_runs(self, page_number: int) -> tuple:
        """Runs of consecutive page lines sharing (channel, bank, row).

        Returns ``((start_line, count), ...)`` over the page's 64 lines.
        SINGLE_CHANNEL mode with >=64 columns per row yields one run per
        page; CACHELINE interleave degenerates to length-1 runs (correct,
        just not batched).
        """
        runs = self._run_cache.get(page_number)
        if runs is None:
            coords = self.page_coordinates(page_number)
            banks = self.banks_per_group
            out = []
            start = 0
            key = None
            for index, coord in enumerate(coords):
                this = (coord.channel, coord.bank_index(banks), coord.row)
                if key is None:
                    key = this
                elif this != key or coord.column != coords[index - 1].column + 1:
                    out.append((start, index - start))
                    start, key = index, this
            out.append((start, len(coords) - start))
            if len(self._run_cache) >= self._page_cache_limit:
                self._run_cache.clear()
            runs = self._run_cache[page_number] = tuple(out)
        return runs

    def run_length(self, address: int) -> int:
        """Lines from `address` to the end of its same-row run (>= 1).

        A batch issuer may coalesce up to this many consecutive lines into
        one open-row burst without changing the ACT/PRE stream.  Runs never
        cross a 4 KB page boundary (callers re-query per page).
        """
        line = (address >> 6) & 63
        for start, count in self.page_runs(address >> 12):
            if start <= line < start + count:
                return start + count - line
        raise AssertionError("line %d not covered by page runs" % line)

    # -- inverse mapping (the Addr Remap module) ------------------------------

    def encode(self, coordinate: DramCoordinate) -> int:
        """DRAM coordinate -> line-aligned physical address."""
        bits = coordinate.row
        if self.interleave is InterleaveMode.SINGLE_CHANNEL and self.channels > 1:
            bits |= coordinate.channel << self._row_bits
        bits = (bits << self._bg_bits) | coordinate.bank_group
        bits = (bits << self._bank_bits) | coordinate.bank
        bits = (bits << self._column_bits) | coordinate.column
        if self.interleave is InterleaveMode.CACHELINE and self.channels > 1:
            bits = (bits << self._channel_bits) | coordinate.channel
        return bits << self._offset_bits

    def page_number(self, address: int) -> int:
        """4 KB page number containing `address`."""
        return address >> 12

    def lines_of_page(self, page_number: int) -> range:
        """Line-aligned addresses covering one 4 KB page."""
        base = page_number << 12
        return range(base, base + 4096, CACHELINE_SIZE)
