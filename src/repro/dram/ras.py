"""Memory RAS: latent cell flips, patrol scrubbing, CE→UE escalation.

The SEC-DED model in :mod:`repro.dram.physical_memory` corrupts data *in
flight* — a ``dram.corrupt`` fire affects exactly one read and leaves the
array clean.  Real DRAM reliability is dominated by the opposite case:
flips that land in the array and *stay there*, silently accumulating until
a read (demand or patrol) observes the line.  This module models that:

* :class:`MemoryRas` keeps a map of **latent** flipped bits per cacheline.
  Flips are deposited over time by the ``dram.cell_flip`` fault site (one
  Bernoulli decision per :attr:`RasConfig.flip_interval_cycles` of
  controller time, landing on a uniformly random resident line).  On any
  read of a line with latent flips:

  - one flip ⇒ **CE**: SEC-DED corrects it, the flip is cleared, and the
    line's *row* takes a leaky-bucket demerit;
  - two or more flips ⇒ **UE**: the line is marked **poisoned** and the
    read raises :class:`~repro.faults.errors.PoisonError` — corrupted
    data is never silently returned.  Writes repair cells: a full-line
    write clears latent flips and poison.

* Rows whose CE bucket exceeds :attr:`RasConfig.ce_bucket_threshold`
  **retire**: their data notionally migrates to a spare row, so future
  flips targeting a retired row are discarded (the spare is healthy).
  Buckets leak one demerit per completed patrol sweep, so scattered CEs
  age out while a genuinely weak row crosses the threshold.

* :class:`PatrolScrubber` walks resident lines in address order,
  :attr:`RasConfig.scrub_lines_per_pass` per
  :attr:`RasConfig.scrub_interval_cycles`.  Scrubbing a single-flip line
  corrects it *before* a second flip can escalate it to UE — the causal
  mechanism the scrub-rate sweep measures.  Every scrubbed line is priced
  against the memory controller (CAS occupancy per line, ACT+PRE per row
  crossed), so scrub bandwidth visibly costs goodput: callers add
  :meth:`MemoryRas.advance`'s return value to ``mc.cycle``.

Everything is deterministic: flip placement draws from the plan's
``dram.cell_flip`` RNG stream, resident lines are enumerated in sorted
order, and the scrub cursor advances deterministically.  With no
:class:`MemoryRas` attached the memory fast paths are untouched (one
``is not None`` guard, same contract as the fault plan hooks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import CACHELINE_SIZE, LINES_PER_PAGE, PAGE_SIZE
from repro.faults.errors import PoisonError
from repro.faults.plan import FaultSite


@dataclass
class RasConfig:
    """Knobs for the RAS engine, defaulting to a DDR4-ish patrol policy."""

    #: Bytes per DRAM row for retirement accounting (128 columns x 64 B).
    row_bytes: int = 8192
    #: Controller cycles between ``dram.cell_flip`` deposit decisions.
    flip_interval_cycles: int = 2048
    #: Controller cycles between patrol scrub bursts.
    scrub_interval_cycles: int = 4096
    #: Resident lines scrubbed per burst (0 disables patrol scrubbing).
    scrub_lines_per_pass: int = 8
    #: CE demerits before a row retires to its spare.
    ce_bucket_threshold: int = 3
    #: Demerits leaked from every row bucket per completed patrol sweep.
    ce_bucket_leak: int = 1
    #: Channel occupancy charged per scrubbed line (one rdCAS burst).
    scrub_cas_cycles: int = 4
    #: ACT + PRE cost charged when a scrub burst crosses into a new row.
    scrub_row_open_cycles: int = 44


@dataclass
class RasStats:
    """RAS activity counters for one memory device."""

    flips_deposited: int = 0  # latent cell flips landed in the array
    flips_discarded: int = 0  # flips targeting an already-retired row
    ce_corrected: int = 0  # single-flip lines corrected (demand or patrol)
    ce_demand: int = 0  # ...of which found by demand reads
    ce_patrol: int = 0  # ...of which found by the scrubber
    ue_poisoned: int = 0  # multi-flip lines escalated to poison
    poison_reads: int = 0  # reads refused because the line was poisoned
    poisons_cleared: int = 0  # poisoned lines repaired by writes
    rows_retired: int = 0  # rows whose CE bucket overflowed
    scrub_passes: int = 0  # full sweeps over the resident set
    scrubbed_lines: int = 0  # line visits by the patrol scrubber
    scrub_cycles: int = 0  # controller cycles charged to scrubbing


class PatrolScrubber:
    """Background sweep over resident lines, priced against the channel."""

    def __init__(self, ras: "MemoryRas"):
        self.ras = ras
        self._cursor = 0  # index into the sorted resident-line walk

    def burst(self) -> int:
        """Scrub one burst of lines; returns the controller cycles burned."""
        ras = self.ras
        config = ras.config
        count = config.scrub_lines_per_pass
        if count <= 0:
            return 0
        pages = sorted(ras.memory._pages)
        if not pages:
            return 0
        total_lines = len(pages) * LINES_PER_PAGE
        cycles = 0
        last_row = None
        for _ in range(count):
            if self._cursor >= total_lines:
                self._cursor = 0
                ras.stats.scrub_passes += 1
                ras._leak_buckets()
            page_index, line = divmod(self._cursor, LINES_PER_PAGE)
            address = pages[page_index] * PAGE_SIZE + line * CACHELINE_SIZE
            self._cursor += 1
            row = address // config.row_bytes
            cycles += config.scrub_cas_cycles
            if row != last_row:
                cycles += config.scrub_row_open_cycles
                last_row = row
            ras.stats.scrubbed_lines += 1
            ras._scrub_line(address)
        ras.stats.scrub_cycles += cycles
        return cycles


class MemoryRas:
    """Latent-error RAS engine for one :class:`PhysicalMemory`.

    Attach with ``memory.attach_ras(ras)``; pump with :meth:`advance`
    (callers add the returned scrub cycles to their controller clock).
    """

    def __init__(self, memory, plan=None, config: RasConfig = None):
        self.memory = memory
        self.plan = plan
        self.config = config or RasConfig()
        self.stats = RasStats()
        self.scrubber = PatrolScrubber(self)
        self.latent = {}  # line address -> set of flipped bit positions
        self.poisoned = set()  # line addresses refusing reads
        self.ce_buckets = {}  # row -> leaky-bucket demerit count
        self.retired_rows = set()
        self._last_flip_cycle = 0
        self._last_scrub_cycle = 0

    # -- time-driven background activity ------------------------------------------

    def advance(self, now_cycle: int) -> int:
        """Run background flip deposits and patrol bursts up to `now_cycle`.

        Returns the controller cycles the scrubber consumed; the caller
        charges them to its clock (``mc.cycle += ras.advance(mc.cycle)``)
        so scrub bandwidth is paid for exactly like demand traffic.
        """
        config = self.config
        plan = self.plan
        if plan is not None:
            intervals = (now_cycle - self._last_flip_cycle) // config.flip_interval_cycles
            if intervals > 0:
                self._last_flip_cycle += intervals * config.flip_interval_cycles
                for _ in range(intervals):
                    if plan.fires(FaultSite.DRAM_CELL_FLIP):
                        self._deposit_flip(plan)
        scrubbed = 0
        if config.scrub_lines_per_pass > 0:
            bursts = (now_cycle - self._last_scrub_cycle) // config.scrub_interval_cycles
            if bursts > 0:
                self._last_scrub_cycle += bursts * config.scrub_interval_cycles
                for _ in range(bursts):
                    scrubbed += self.scrubber.burst()
        return scrubbed

    def _deposit_flip(self, plan) -> None:
        pages = sorted(self.memory._pages)
        if not pages:
            return
        rng = plan.rng(FaultSite.DRAM_CELL_FLIP)
        page = pages[rng.randrange(len(pages))]
        line = rng.randrange(LINES_PER_PAGE)
        address = page * PAGE_SIZE + line * CACHELINE_SIZE
        bit = rng.randrange(8 * CACHELINE_SIZE)
        if address // self.config.row_bytes in self.retired_rows:
            # The weak row already migrated to its spare; the flip lands
            # in decommissioned cells nobody will ever read.
            self.stats.flips_discarded += 1
            return
        self.latent.setdefault(address, set()).add(bit)
        self.stats.flips_deposited += 1

    # -- test / scenario helper -----------------------------------------------------

    def inject_flips(self, address: int, bits: int = 1) -> None:
        """Deterministically deposit `bits` latent flips on one line."""
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned flip injection at 0x%x" % address)
        flips = self.latent.setdefault(address, set())
        bit = 0
        while bits > 0:
            if bit not in flips:
                flips.add(bit)
                self.stats.flips_deposited += 1
                bits -= 1
            bit += 1

    # -- read/write hooks (called by PhysicalMemory) ---------------------------------

    def on_read(self, address: int) -> None:
        """One demand read of a line: correct, escalate, or refuse.

        Raises :class:`PoisonError` for poisoned lines and for fresh UEs
        (which poison the line first) — corrupted bytes never flow.
        """
        if address in self.poisoned:
            self.stats.poison_reads += 1
            raise PoisonError(
                "read of poisoned line 0x%x (uncorrectable memory error)"
                % address,
                address=address, row=address // self.config.row_bytes,
            )
        flips = self.latent.get(address)
        if flips is None:
            return
        if len(flips) == 1:
            del self.latent[address]
            self.stats.ce_corrected += 1
            self.stats.ce_demand += 1
            self._bump_row(address // self.config.row_bytes)
            return
        self._poison(address)
        self.stats.poison_reads += 1
        raise PoisonError(
            "uncorrectable error at 0x%x escalated to poison (%d flips)"
            % (address, len(flips)),
            address=address, row=address // self.config.row_bytes,
        )

    def on_write(self, address: int, length: int) -> None:
        """Writes rewrite the cells: clear latent flips and poison."""
        if not self.latent and not self.poisoned:
            return
        start = address - address % CACHELINE_SIZE
        for line in range(start, address + length, CACHELINE_SIZE):
            self.latent.pop(line, None)
            if line in self.poisoned:
                self.poisoned.discard(line)
                self.stats.poisons_cleared += 1

    # -- patrol + retirement internals ----------------------------------------------

    def _scrub_line(self, address: int) -> None:
        if address in self.poisoned:
            return  # already escalated; waiting for software to rewrite
        flips = self.latent.get(address)
        if flips is None:
            return
        if len(flips) == 1:
            del self.latent[address]
            self.stats.ce_corrected += 1
            self.stats.ce_patrol += 1
            self._bump_row(address // self.config.row_bytes)
            return
        # The patrol found an already-uncorrectable line: poison it now,
        # before any consumer trips over it at demand-read time.
        self._poison(address)

    def _poison(self, address: int) -> None:
        self.latent.pop(address, None)
        self.poisoned.add(address)
        self.stats.ue_poisoned += 1
        self._bump_row(address // self.config.row_bytes)

    def _bump_row(self, row: int) -> None:
        if row in self.retired_rows:
            return
        demerits = self.ce_buckets.get(row, 0) + 1
        self.ce_buckets[row] = demerits
        if demerits > self.config.ce_bucket_threshold:
            self.retired_rows.add(row)
            self.stats.rows_retired += 1
            del self.ce_buckets[row]
            # Migration to the spare carries the data; pending latent
            # flips in the weak row are left behind with it.
            lo = row * self.config.row_bytes
            hi = lo + self.config.row_bytes
            for line in [a for a in self.latent if lo <= a < hi]:
                del self.latent[line]

    def _leak_buckets(self) -> None:
        leak = self.config.ce_bucket_leak
        if leak <= 0:
            return
        for row in list(self.ce_buckets):
            remaining = self.ce_buckets[row] - leak
            if remaining > 0:
                self.ce_buckets[row] = remaining
            else:
                del self.ce_buckets[row]

    # -- reporting -------------------------------------------------------------------

    def report(self) -> dict:
        """Deterministic JSON-ready snapshot of RAS activity."""
        stats = self.stats
        return {
            "flips_deposited": stats.flips_deposited,
            "flips_discarded": stats.flips_discarded,
            "ce_corrected": stats.ce_corrected,
            "ce_demand": stats.ce_demand,
            "ce_patrol": stats.ce_patrol,
            "ue_poisoned": stats.ue_poisoned,
            "poison_reads": stats.poison_reads,
            "poisons_cleared": stats.poisons_cleared,
            "rows_retired": stats.rows_retired,
            "scrub_passes": stats.scrub_passes,
            "scrubbed_lines": stats.scrubbed_lines,
            "scrub_cycles": stats.scrub_cycles,
            "latent_lines": len(self.latent),
            "poisoned_lines": len(self.poisoned),
        }
