"""Command-level DDR memory controller.

The controller is the clock master of the micro-simulation: each command it
issues advances a cycle counter by calibrated amounts, and the resulting
(cycle, command, address) stream is what the SmartDIMM buffer device — or a
plain DIMM — consumes.

Behaviours the SmartDIMM offload model depends on (Sec. IV-D):

* **Open-page policy with per-bank row tracking.**  ACT/PRE commands keep
  the DIMM-side bank table (Fig. 5) in sync with reality.
* **Write batching.**  Stores buffer in a write queue and drain lazily; this
  is one source of the >1 µs slack between the first sbuf rdCAS and the
  first dbuf wrCAS that lets the DSA run ahead of consumption.
* **Read priority with store forwarding.**  Reads bypass queued writes but
  must observe them.
* **ALERT_N retry.**  When the DIMM asserts ALERT_N on a rdCAS (S13 in
  Fig. 6: computation not yet finished), the controller waits and reissues.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import AddressMapping, DramCoordinate
from repro.dram.commands import CACHELINE_SIZE, Command, CommandType
from repro.dram.physical_memory import PhysicalMemory
from repro.faults.errors import DsaWedgedError


@dataclass(slots=True)
class CasResult:
    """Outcome of a CAS command at the DIMM."""

    data: bytes = b""
    alert: bool = False  # ALERT_N asserted: retry the rdCAS
    ignored: bool = False  # wrCAS dropped (S7: write before compute done)


class PlainDIMM:
    """A regular DIMM: CAS commands go straight to the DRAM devices."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory

    def handle_command(self, command: Command) -> CasResult:
        """Serve one DDR command from the DRAM devices."""
        if command.kind is CommandType.RDCAS:
            return CasResult(data=self.memory.read_line(command.address))
        if command.kind is CommandType.WRCAS:
            self.memory.write_line(command.address, command.data)
            return CasResult()
        return CasResult()  # ACT/PRE maintain bank state only

    # -- batched fast path (MemoryController.read_lines/write_lines) --------

    def bulk_ok(self, address: int) -> bool:
        """A plain DIMM can always serve a same-row CAS burst."""
        return True

    def read_line_run(self, address: int, count: int, first_cycle: int,
                      step: int) -> tuple:
        """Serve `count` consecutive rdCAS bursts; never alerts."""
        return self.memory.read_lines(address, count), count, False

    def write_line_run(self, address: int, datas: list, first_cycle: int,
                       step: int) -> None:
        """Absorb consecutive wrCAS bursts into the DRAM devices."""
        self.memory.write(address, b"".join(datas))


@dataclass
class TimingParams:
    """Controller-cycle costs (DDR4-3200-class defaults, coarse)."""

    activate_cycles: int = 22  # tRCD
    precharge_cycles: int = 22  # tRP
    cas_cycles: int = 4  # channel occupancy of one 64-byte burst
    turnaround_cycles: int = 12  # read<->write bus turnaround
    fence_cycles: int = 8  # serialisation cost of a memory barrier
    command_only_cycles: int = 1  # CMP_RDCAS / SPAD_WB: no data burst
    alert_retry_cycles: int = 64  # back-off before reissuing after ALERT_N
    max_alert_retries: int = 64  # watchdog: retries before DsaWedgedError
    alert_backoff_cap: int = 64  # exponential backoff multiplier ceiling
    cycle_time_ns: float = 0.625  # 1.6 GHz controller clock
    # Bank-level parallelism: after an ACT, the bank is busy for tRAS-class
    # time; a CAS to a *different*, already-open bank can proceed without
    # waiting, but hammering one bank serialises on its recovery window.
    bank_busy_cycles: int = 34  # ~tRAS at DDR4-3200 in controller cycles


@dataclass
class ControllerStats:
    reads: int = 0
    writes: int = 0
    activates: int = 0
    precharges: int = 0
    row_hits: int = 0
    row_misses: int = 0
    alerts: int = 0
    alert_backoff_cycles: int = 0  # cycles burned in exponential backoff
    wedges: int = 0  # retry budgets drained (DsaWedgedError raised)
    forwarded_reads: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    compute_reads: int = 0  # Sec. IV-E CMP_RDCAS commands (no data burst)
    scratchpad_writebacks: int = 0  # Sec. IV-E SPAD_WB commands
    bank_conflicts: int = 0  # ACT delayed by the bank's recovery window

    @property
    def data_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


@dataclass(slots=True)
class TraceEntry:
    cycle: int
    kind: str  # "rdCAS" or "wrCAS"
    address: int


class MemoryController:
    """Schedules line-granular reads/writes onto per-channel DIMM devices.

    `batch=True` (the default) enables the range-granular fast path: the
    batch APIs (:meth:`read_lines`, :meth:`write_lines`,
    :meth:`write_lines_now`) coalesce same-row CAS bursts into one
    open-row check + one turnaround check per run, and the write-queue
    drain issues runs instead of single lines.  The command stream, cycle
    counts, stats, and trace are identical to the per-line reference path
    (`batch=False`), which the equivalence tests assert.
    """

    WRITE_QUEUE_HIGH_WATERMARK = 48
    WRITE_QUEUE_DRAIN_TO = 16

    def __init__(
        self,
        mapping: AddressMapping,
        dimms: dict,
        timing: TimingParams = None,
        trace: bool = False,
        batch: bool = True,
    ):
        self.mapping = mapping
        self.dimms = dict(dimms)
        missing = set(range(mapping.channels)) - set(self.dimms)
        if missing:
            raise ValueError("no DIMM bound to channels %s" % sorted(missing))
        self.timing = timing or TimingParams()
        self.batch = batch
        self.cycle = 0
        self.stats = ControllerStats()
        self.trace = [] if trace else None
        self._open_rows = {}  # (channel, flat_bank) -> row
        self._bank_busy_until = {}  # (channel, flat_bank) -> cycle
        self._write_queue = {}  # address -> data, insertion ordered
        self._last_direction = None  # "read" | "write"

    # -- public line interface ------------------------------------------------

    def read_line(self, address: int) -> bytes:
        """Read one cacheline, observing queued writes."""
        self._check_aligned(address)
        if address in self._write_queue:
            # Store-to-load forwarding: the line never travels to DRAM.
            self.stats.forwarded_reads += 1
            return self._write_queue[address]
        result = self._issue_with_alert_retry(address, CommandType.RDCAS)
        self.stats.reads += 1
        self.stats.bytes_read += CACHELINE_SIZE
        return result.data

    def write_line(self, address: int, data: bytes) -> None:
        """Queue one cacheline write; drains lazily."""
        self._check_aligned(address)
        if len(data) != CACHELINE_SIZE:
            raise ValueError("write must be one %d-byte line" % CACHELINE_SIZE)
        self._write_queue[address] = bytes(data)
        if len(self._write_queue) >= self.WRITE_QUEUE_HIGH_WATERMARK:
            self._drain_writes(target=self.WRITE_QUEUE_DRAIN_TO)

    def fence(self) -> None:
        """Memory barrier: drain all queued writes (CompCpy's membar).

        Even with an empty queue the barrier serialises the pipeline, so it
        always costs `fence_cycles` — the ordering tax of Algorithm 2's
        per-64-byte membar path.
        """
        self.cycle += self.timing.fence_cycles
        self._drain_writes(target=0)

    def write_line_now(self, address: int, data: bytes) -> None:
        """Write bypassing the queue (used for explicit flush writebacks)."""
        self._check_aligned(address)
        self._write_queue.pop(address, None)
        self._issue_write(address, data)

    # -- batch line interface (fast path; equivalent to per-line loops) ---------

    def read_lines(self, address: int, count: int) -> bytes:
        """Read `count` consecutive cachelines (== joining read_line calls).

        Queued writes are forwarded per line exactly as :meth:`read_line`
        does; the non-forwarded spans between them are issued as same-row
        CAS bursts through the DIMM's ``read_line_run`` fast path.
        """
        self._check_aligned(address)
        if count <= 0:
            return b""
        if not self.batch or count == 1:
            return b"".join(
                self.read_line(address + (i << 6)) for i in range(count)
            )
        parts = []
        queue = self._write_queue
        i = 0
        while i < count:
            line_address = address + (i << 6)
            queued = queue.get(line_address)
            if queued is not None:
                # Store-to-load forwarding, same as the per-line path.
                self.stats.forwarded_reads += 1
                parts.append(queued)
                i += 1
                continue
            j = i + 1
            while j < count and (address + (j << 6)) not in queue:
                j += 1
            self._read_span(line_address, j - i, parts)
            i = j
        return b"".join(parts)

    def _read_span(self, address: int, count: int, parts: list) -> None:
        """Issue reads for `count` lines known to miss the write queue."""
        timing = self.timing
        cas = timing.cas_cycles
        while count:
            run = min(count, self.mapping.run_length(address))
            coordinate = self.mapping.line_coordinate(address)
            device = self.dimms[coordinate.channel]
            bulk = run > 1 and getattr(device, "bulk_ok", None)
            if not (bulk and device.bulk_ok(address)):
                # Reference single-line issue (also the MMIO/foreign-device
                # path): identical to read_line minus the forwarding check.
                result = self._issue_with_alert_retry(address, CommandType.RDCAS)
                self.stats.reads += 1
                self.stats.bytes_read += CACHELINE_SIZE
                parts.append(result.data)
                address += CACHELINE_SIZE
                count -= 1
                continue
            direct = type(device) is PlainDIMM
            while run:
                coordinate = self.mapping.line_coordinate(address)
                self._open_row(coordinate, device, direct=direct)
                if self._last_direction not in (None, "read"):
                    self.cycle += timing.turnaround_cycles
                self._last_direction = "read"
                first_cycle = self.cycle + cas
                data, served, alerted = device.read_line_run(
                    address, run, first_cycle, cas
                )
                issued = served + (1 if alerted else 0)
                self.stats.row_hits += issued - 1
                self.cycle += cas * issued
                if self.trace is not None:
                    for m in range(issued):
                        self.trace.append(
                            TraceEntry(first_cycle + cas * m, "rdCAS",
                                       address + (m << 6))
                        )
                if served:
                    parts.append(data)
                    self.stats.reads += served
                    self.stats.bytes_read += served * CACHELINE_SIZE
                    address += served << 6
                    run -= served
                    count -= served
                if alerted:
                    # The alerting issue is already charged above; continue
                    # the reference backoff/reissue loop for that line.
                    result = self._alert_retry_continue(address, CommandType.RDCAS)
                    self.stats.reads += 1
                    self.stats.bytes_read += CACHELINE_SIZE
                    parts.append(result.data)
                    address += CACHELINE_SIZE
                    run -= 1
                    count -= 1

    def write_lines(self, address: int, data: bytes) -> None:
        """Queue consecutive cacheline writes (== a write_line loop)."""
        self._check_aligned(address)
        if len(data) % CACHELINE_SIZE:
            raise ValueError(
                "bulk write must be a multiple of %d bytes" % CACHELINE_SIZE
            )
        queue = self._write_queue
        watermark = self.WRITE_QUEUE_HIGH_WATERMARK
        view = memoryview(data)
        for offset in range(0, len(data), CACHELINE_SIZE):
            queue[address + offset] = bytes(view[offset:offset + CACHELINE_SIZE])
            if len(queue) >= watermark:
                self._drain_writes(target=self.WRITE_QUEUE_DRAIN_TO)

    def write_lines_now(self, address: int, datas: list) -> None:
        """Flush writebacks for consecutive lines, bypassing the queue
        (== a write_line_now loop: queued copies are removed first)."""
        self._check_aligned(address)
        queue = self._write_queue
        for i in range(len(datas)):
            queue.pop(address + (i << 6), None)
        self._write_run(address, datas)

    def _write_run(self, address: int, datas: list) -> None:
        """Issue consecutive wrCAS bursts, coalescing same-row runs."""
        timing = self.timing
        cas = timing.cas_cycles
        i = 0
        n = len(datas)
        while i < n:
            line_address = address + (i << 6)
            run = min(n - i, self.mapping.run_length(line_address))
            coordinate = self.mapping.line_coordinate(line_address)
            device = self.dimms[coordinate.channel]
            bulk = self.batch and run > 1 and getattr(device, "bulk_ok", None)
            if not (bulk and device.bulk_ok(line_address)):
                self._issue_write(line_address, datas[i])
                i += 1
                continue
            self._open_row(coordinate, device, direct=type(device) is PlainDIMM)
            if self._last_direction not in (None, "write"):
                self.cycle += timing.turnaround_cycles
            self._last_direction = "write"
            first_cycle = self.cycle + cas
            self.stats.row_hits += run - 1
            self.cycle += cas * run
            if self.trace is not None:
                for m in range(run):
                    self.trace.append(
                        TraceEntry(first_cycle + cas * m, "wrCAS",
                                   line_address + (m << 6))
                    )
            device.write_line_run(line_address, datas[i:i + run], first_cycle, cas)
            self.stats.writes += run
            self.stats.bytes_written += run * CACHELINE_SIZE
            i += run

    # -- Sec. IV-E command extensions (used by DirectOffload, not plain CPUs) ----

    def compute_read_line(self, address: int) -> None:
        """Issue a compute read: the buffer device feeds the line from DRAM
        straight to the DSA; no data burst returns, no cache is polluted."""
        self._check_aligned(address)
        if address in self._write_queue:
            # The freshest copy is still queued; push it home first so the
            # DSA sees current data.
            self.write_line_now(address, self._write_queue[address])
        self._issue_cas(address, CommandType.CMP_RDCAS, b"")
        self.stats.compute_reads += 1

    def scratchpad_writeback_line(self, address: int) -> bool:
        """Tell the buffer device to retire a staged scratchpad line to
        DRAM internally.  Always returns True: the ALERT_N retry loop
        either completes the writeback (backing off while the DSA has not
        finished that line) or raises :class:`DsaWedgedError` — it never
        reports partial failure to the caller."""
        self._check_aligned(address)
        self._issue_with_alert_retry(address, CommandType.SPAD_WB)
        self.stats.scratchpad_writebacks += 1
        return True

    # -- internals -------------------------------------------------------------

    def _issue_with_alert_retry(self, address: int, kind: CommandType) -> CasResult:
        """Issue a CAS, reissuing with exponential backoff on ALERT_N.

        Shared by the rdCAS (S13) and SPAD_WB retry paths.  Backoff doubles
        per retry up to ``timing.alert_backoff_cap``; when
        ``timing.max_alert_retries`` reissues all come back asserted, the
        DSA is treated as wedged (the model's watchdog timeout) and a
        :class:`~repro.faults.errors.DsaWedgedError` carrying the address,
        retry count, and backoff cycles consumed is raised.
        """
        result = self._issue_cas(address, kind, b"")
        retries = 0
        backoff = 0
        while result.alert:
            self.stats.alerts += 1
            retries += 1
            if retries > self.timing.max_alert_retries:
                self.stats.wedges += 1
                raise DsaWedgedError(
                    "%s retry limit (%d) exceeded at 0x%x; DSA wedged"
                    % (kind.value, self.timing.max_alert_retries, address),
                    site=kind.value, address=address, retries=retries - 1,
                    backoff_cycles=backoff,
                )
            # Exponential backoff: a stalled computation should not keep the
            # channel busy with retry traffic.
            step = self.timing.alert_retry_cycles * min(
                1 << (retries - 1), self.timing.alert_backoff_cap
            )
            self.cycle += step
            backoff += step
            self.stats.alert_backoff_cycles += step
            result = self._issue_cas(address, kind, b"")
        return result

    def _alert_retry_continue(self, address: int, kind: CommandType) -> CasResult:
        """Resume the ALERT_N retry loop after a batched issue alerted.

        The alerting issue itself was already charged by the caller
        (cycle + trace entry), so this enters
        :meth:`_issue_with_alert_retry`'s loop body directly: count the
        alert, back off, reissue — until the line serves or the DSA wedges.
        """
        retries = 0
        backoff = 0
        while True:
            self.stats.alerts += 1
            retries += 1
            if retries > self.timing.max_alert_retries:
                self.stats.wedges += 1
                raise DsaWedgedError(
                    "%s retry limit (%d) exceeded at 0x%x; DSA wedged"
                    % (kind.value, self.timing.max_alert_retries, address),
                    site=kind.value, address=address, retries=retries - 1,
                    backoff_cycles=backoff,
                )
            step = self.timing.alert_retry_cycles * min(
                1 << (retries - 1), self.timing.alert_backoff_cap
            )
            self.cycle += step
            backoff += step
            self.stats.alert_backoff_cycles += step
            result = self._issue_cas(address, kind, b"")
            if not result.alert:
                return result

    @staticmethod
    def _check_aligned(address: int) -> None:
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned line access at 0x%x" % address)

    def _drain_writes(self, target: int) -> None:
        if not self.batch:
            while len(self._write_queue) > target:
                address, data = next(iter(self._write_queue.items()))
                del self._write_queue[address]
                self._issue_write(address, data)
            return
        # Batched drain: pop runs of entries that are consecutive both in
        # insertion order and in address, then issue each run as one
        # same-row burst.  Identical pop order to the reference loop.
        queue = self._write_queue
        while len(queue) > target:
            items = iter(queue.items())
            address, data = next(items)
            max_pop = min(len(queue) - target, self.mapping.run_length(address))
            datas = [data]
            expected = address + CACHELINE_SIZE
            while len(datas) < max_pop:
                try:
                    next_address, next_data = next(items)
                except StopIteration:
                    break
                if next_address != expected:
                    break
                datas.append(next_data)
                expected += CACHELINE_SIZE
            for i in range(len(datas)):
                del queue[address + (i << 6)]
            self._write_run(address, datas)

    def _issue_write(self, address: int, data: bytes) -> None:
        result = self._issue_cas(address, CommandType.WRCAS, data)
        self.stats.writes += 1
        self.stats.bytes_written += CACHELINE_SIZE
        if result.ignored:
            # S7: the DIMM dropped a premature writeback; nothing to do —
            # the scratchpad still owns the line.
            pass

    def _issue_cas(self, address: int, kind: CommandType, data: bytes) -> CasResult:
        coordinate = self.mapping.line_coordinate(address)
        device = self.dimms[coordinate.channel]
        if (
            self.batch
            and type(device) is PlainDIMM
            and kind in (CommandType.RDCAS, CommandType.WRCAS)
        ):
            # Plain-DIMM direct path: no Command objects.  ACT/PRE/CAS at a
            # plain DIMM carry no device-side state (handle_command only
            # touches DRAM for CAS), so the burst goes straight to the
            # backing memory with identical cycle/stats/trace accounting.
            self._open_row(coordinate, device, direct=True)
            if kind is CommandType.RDCAS:
                if self._last_direction not in (None, "read"):
                    self.cycle += self.timing.turnaround_cycles
                self._last_direction = "read"
                self.cycle += self.timing.cas_cycles
                if self.trace is not None:
                    self.trace.append(TraceEntry(self.cycle, "rdCAS", address))
                return CasResult(data=device.memory.read_line(address))
            if self._last_direction not in (None, "write"):
                self.cycle += self.timing.turnaround_cycles
            self._last_direction = "write"
            self.cycle += self.timing.cas_cycles
            if self.trace is not None:
                self.trace.append(TraceEntry(self.cycle, "wrCAS", address))
            if len(data) != CACHELINE_SIZE:
                raise ValueError(
                    "wrCAS data burst must be %d bytes, got %d"
                    % (CACHELINE_SIZE, len(data))
                )
            device.memory.write_line(address, data)
            return CasResult()
        self._open_row(coordinate, device)
        direction = "read" if kind in (CommandType.RDCAS, CommandType.CMP_RDCAS) else "write"
        if self._last_direction not in (None, direction):
            self.cycle += self.timing.turnaround_cycles
        self._last_direction = direction
        # Command-only operations occupy a command slot but no data burst.
        if kind in (CommandType.CMP_RDCAS, CommandType.SPAD_WB):
            self.cycle += self.timing.command_only_cycles
        else:
            self.cycle += self.timing.cas_cycles
        command = Command(
            kind=kind,
            cycle=self.cycle,
            address=address,
            bank_group=coordinate.bank_group,
            bank=coordinate.bank,
            row=coordinate.row,
            column=coordinate.column,
            data=data,
        )
        if self.trace is not None and kind in (CommandType.RDCAS, CommandType.WRCAS):
            self.trace.append(TraceEntry(self.cycle, kind.value, address))
        return device.handle_command(command)

    def _open_row(self, coordinate: DramCoordinate, device, direct: bool = False) -> None:
        key = (coordinate.channel, coordinate.bank_index(self.mapping.banks_per_group))
        open_row = self._open_rows.get(key)
        if open_row == coordinate.row:
            self.stats.row_hits += 1
            return
        self.stats.row_misses += 1
        # Bank-level parallelism: re-opening a bank must respect its
        # recovery window; other banks' activity overlaps freely.
        busy_until = self._bank_busy_until.get(key, 0)
        if self.cycle < busy_until:
            self.stats.bank_conflicts += 1
            self.cycle = busy_until
        if open_row is not None:
            self.cycle += self.timing.precharge_cycles
            self.stats.precharges += 1
            if not direct:
                device.handle_command(
                    Command(
                        kind=CommandType.PRE,
                        cycle=self.cycle,
                        bank_group=coordinate.bank_group,
                        bank=coordinate.bank,
                        row=open_row,
                    )
                )
        self.cycle += self.timing.activate_cycles
        self.stats.activates += 1
        if not direct:
            device.handle_command(
                Command(
                    kind=CommandType.ACT,
                    cycle=self.cycle,
                    bank_group=coordinate.bank_group,
                    bank=coordinate.bank,
                    row=coordinate.row,
                )
            )
        self._open_rows[key] = coordinate.row
        self._bank_busy_until[key] = self.cycle + self.timing.bank_busy_cycles

    # -- convenience ------------------------------------------------------------

    @property
    def time_ns(self) -> float:
        return self.cycle * self.timing.cycle_time_ns

    def memory_bandwidth_bytes(self) -> int:
        """Total data moved over the DDR channels so far."""
        return self.stats.data_bytes
