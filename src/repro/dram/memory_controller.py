"""Command-level DDR memory controller.

The controller is the clock master of the micro-simulation: each command it
issues advances a cycle counter by calibrated amounts, and the resulting
(cycle, command, address) stream is what the SmartDIMM buffer device — or a
plain DIMM — consumes.

Behaviours the SmartDIMM offload model depends on (Sec. IV-D):

* **Open-page policy with per-bank row tracking.**  ACT/PRE commands keep
  the DIMM-side bank table (Fig. 5) in sync with reality.
* **Write batching.**  Stores buffer in a write queue and drain lazily; this
  is one source of the >1 µs slack between the first sbuf rdCAS and the
  first dbuf wrCAS that lets the DSA run ahead of consumption.
* **Read priority with store forwarding.**  Reads bypass queued writes but
  must observe them.
* **ALERT_N retry.**  When the DIMM asserts ALERT_N on a rdCAS (S13 in
  Fig. 6: computation not yet finished), the controller waits and reissues.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import AddressMapping, DramCoordinate
from repro.dram.commands import CACHELINE_SIZE, Command, CommandType
from repro.dram.physical_memory import PhysicalMemory
from repro.faults.errors import DsaWedgedError


@dataclass
class CasResult:
    """Outcome of a CAS command at the DIMM."""

    data: bytes = b""
    alert: bool = False  # ALERT_N asserted: retry the rdCAS
    ignored: bool = False  # wrCAS dropped (S7: write before compute done)


class PlainDIMM:
    """A regular DIMM: CAS commands go straight to the DRAM devices."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory

    def handle_command(self, command: Command) -> CasResult:
        """Serve one DDR command from the DRAM devices."""
        if command.kind is CommandType.RDCAS:
            return CasResult(data=self.memory.read_line(command.address))
        if command.kind is CommandType.WRCAS:
            self.memory.write_line(command.address, command.data)
            return CasResult()
        return CasResult()  # ACT/PRE maintain bank state only


@dataclass
class TimingParams:
    """Controller-cycle costs (DDR4-3200-class defaults, coarse)."""

    activate_cycles: int = 22  # tRCD
    precharge_cycles: int = 22  # tRP
    cas_cycles: int = 4  # channel occupancy of one 64-byte burst
    turnaround_cycles: int = 12  # read<->write bus turnaround
    fence_cycles: int = 8  # serialisation cost of a memory barrier
    command_only_cycles: int = 1  # CMP_RDCAS / SPAD_WB: no data burst
    alert_retry_cycles: int = 64  # back-off before reissuing after ALERT_N
    max_alert_retries: int = 64  # watchdog: retries before DsaWedgedError
    alert_backoff_cap: int = 64  # exponential backoff multiplier ceiling
    cycle_time_ns: float = 0.625  # 1.6 GHz controller clock
    # Bank-level parallelism: after an ACT, the bank is busy for tRAS-class
    # time; a CAS to a *different*, already-open bank can proceed without
    # waiting, but hammering one bank serialises on its recovery window.
    bank_busy_cycles: int = 34  # ~tRAS at DDR4-3200 in controller cycles


@dataclass
class ControllerStats:
    reads: int = 0
    writes: int = 0
    activates: int = 0
    precharges: int = 0
    row_hits: int = 0
    row_misses: int = 0
    alerts: int = 0
    alert_backoff_cycles: int = 0  # cycles burned in exponential backoff
    wedges: int = 0  # retry budgets drained (DsaWedgedError raised)
    forwarded_reads: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    compute_reads: int = 0  # Sec. IV-E CMP_RDCAS commands (no data burst)
    scratchpad_writebacks: int = 0  # Sec. IV-E SPAD_WB commands
    bank_conflicts: int = 0  # ACT delayed by the bank's recovery window

    @property
    def data_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


@dataclass
class TraceEntry:
    cycle: int
    kind: str  # "rdCAS" or "wrCAS"
    address: int


class MemoryController:
    """Schedules line-granular reads/writes onto per-channel DIMM devices."""

    WRITE_QUEUE_HIGH_WATERMARK = 48
    WRITE_QUEUE_DRAIN_TO = 16

    def __init__(
        self,
        mapping: AddressMapping,
        dimms: dict,
        timing: TimingParams = None,
        trace: bool = False,
    ):
        self.mapping = mapping
        self.dimms = dict(dimms)
        missing = set(range(mapping.channels)) - set(self.dimms)
        if missing:
            raise ValueError("no DIMM bound to channels %s" % sorted(missing))
        self.timing = timing or TimingParams()
        self.cycle = 0
        self.stats = ControllerStats()
        self.trace = [] if trace else None
        self._open_rows = {}  # (channel, flat_bank) -> row
        self._bank_busy_until = {}  # (channel, flat_bank) -> cycle
        self._write_queue = {}  # address -> data, insertion ordered
        self._last_direction = None  # "read" | "write"

    # -- public line interface ------------------------------------------------

    def read_line(self, address: int) -> bytes:
        """Read one cacheline, observing queued writes."""
        self._check_aligned(address)
        if address in self._write_queue:
            # Store-to-load forwarding: the line never travels to DRAM.
            self.stats.forwarded_reads += 1
            return self._write_queue[address]
        result = self._issue_with_alert_retry(address, CommandType.RDCAS)
        self.stats.reads += 1
        self.stats.bytes_read += CACHELINE_SIZE
        return result.data

    def write_line(self, address: int, data: bytes) -> None:
        """Queue one cacheline write; drains lazily."""
        self._check_aligned(address)
        if len(data) != CACHELINE_SIZE:
            raise ValueError("write must be one %d-byte line" % CACHELINE_SIZE)
        self._write_queue[address] = bytes(data)
        if len(self._write_queue) >= self.WRITE_QUEUE_HIGH_WATERMARK:
            self._drain_writes(target=self.WRITE_QUEUE_DRAIN_TO)

    def fence(self) -> None:
        """Memory barrier: drain all queued writes (CompCpy's membar).

        Even with an empty queue the barrier serialises the pipeline, so it
        always costs `fence_cycles` — the ordering tax of Algorithm 2's
        per-64-byte membar path.
        """
        self.cycle += self.timing.fence_cycles
        self._drain_writes(target=0)

    def write_line_now(self, address: int, data: bytes) -> None:
        """Write bypassing the queue (used for explicit flush writebacks)."""
        self._check_aligned(address)
        self._write_queue.pop(address, None)
        self._issue_write(address, data)

    # -- Sec. IV-E command extensions (used by DirectOffload, not plain CPUs) ----

    def compute_read_line(self, address: int) -> None:
        """Issue a compute read: the buffer device feeds the line from DRAM
        straight to the DSA; no data burst returns, no cache is polluted."""
        self._check_aligned(address)
        if address in self._write_queue:
            # The freshest copy is still queued; push it home first so the
            # DSA sees current data.
            self.write_line_now(address, self._write_queue[address])
        self._issue_cas(address, CommandType.CMP_RDCAS, b"")
        self.stats.compute_reads += 1

    def scratchpad_writeback_line(self, address: int) -> bool:
        """Tell the buffer device to retire a staged scratchpad line to
        DRAM internally.  Returns False (with a retry consumed) while the
        DSA has not finished that line."""
        self._check_aligned(address)
        self._issue_with_alert_retry(address, CommandType.SPAD_WB)
        self.stats.scratchpad_writebacks += 1
        return True

    # -- internals -------------------------------------------------------------

    def _issue_with_alert_retry(self, address: int, kind: CommandType) -> CasResult:
        """Issue a CAS, reissuing with exponential backoff on ALERT_N.

        Shared by the rdCAS (S13) and SPAD_WB retry paths.  Backoff doubles
        per retry up to ``timing.alert_backoff_cap``; when
        ``timing.max_alert_retries`` reissues all come back asserted, the
        DSA is treated as wedged (the model's watchdog timeout) and a
        :class:`~repro.faults.errors.DsaWedgedError` carrying the address,
        retry count, and backoff cycles consumed is raised.
        """
        result = self._issue_cas(address, kind, b"")
        retries = 0
        backoff = 0
        while result.alert:
            self.stats.alerts += 1
            retries += 1
            if retries > self.timing.max_alert_retries:
                self.stats.wedges += 1
                raise DsaWedgedError(
                    "%s retry limit (%d) exceeded at 0x%x; DSA wedged"
                    % (kind.value, self.timing.max_alert_retries, address),
                    site=kind.value, address=address, retries=retries - 1,
                    backoff_cycles=backoff,
                )
            # Exponential backoff: a stalled computation should not keep the
            # channel busy with retry traffic.
            step = self.timing.alert_retry_cycles * min(
                1 << (retries - 1), self.timing.alert_backoff_cap
            )
            self.cycle += step
            backoff += step
            self.stats.alert_backoff_cycles += step
            result = self._issue_cas(address, kind, b"")
        return result

    @staticmethod
    def _check_aligned(address: int) -> None:
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned line access at 0x%x" % address)

    def _drain_writes(self, target: int) -> None:
        while len(self._write_queue) > target:
            address, data = next(iter(self._write_queue.items()))
            del self._write_queue[address]
            self._issue_write(address, data)

    def _issue_write(self, address: int, data: bytes) -> None:
        result = self._issue_cas(address, CommandType.WRCAS, data)
        self.stats.writes += 1
        self.stats.bytes_written += CACHELINE_SIZE
        if result.ignored:
            # S7: the DIMM dropped a premature writeback; nothing to do —
            # the scratchpad still owns the line.
            pass

    def _issue_cas(self, address: int, kind: CommandType, data: bytes) -> CasResult:
        coordinate = self.mapping.decode(address)
        device = self.dimms[coordinate.channel]
        self._open_row(coordinate, device)
        direction = "read" if kind in (CommandType.RDCAS, CommandType.CMP_RDCAS) else "write"
        if self._last_direction not in (None, direction):
            self.cycle += self.timing.turnaround_cycles
        self._last_direction = direction
        # Command-only operations occupy a command slot but no data burst.
        if kind in (CommandType.CMP_RDCAS, CommandType.SPAD_WB):
            self.cycle += self.timing.command_only_cycles
        else:
            self.cycle += self.timing.cas_cycles
        command = Command(
            kind=kind,
            cycle=self.cycle,
            address=address,
            bank_group=coordinate.bank_group,
            bank=coordinate.bank,
            row=coordinate.row,
            column=coordinate.column,
            data=data,
        )
        if self.trace is not None and kind in (CommandType.RDCAS, CommandType.WRCAS):
            self.trace.append(TraceEntry(self.cycle, kind.value, address))
        return device.handle_command(command)

    def _open_row(self, coordinate: DramCoordinate, device) -> None:
        key = (coordinate.channel, coordinate.bank_index(self.mapping.banks_per_group))
        open_row = self._open_rows.get(key)
        if open_row == coordinate.row:
            self.stats.row_hits += 1
            return
        self.stats.row_misses += 1
        # Bank-level parallelism: re-opening a bank must respect its
        # recovery window; other banks' activity overlaps freely.
        busy_until = self._bank_busy_until.get(key, 0)
        if self.cycle < busy_until:
            self.stats.bank_conflicts += 1
            self.cycle = busy_until
        if open_row is not None:
            self.cycle += self.timing.precharge_cycles
            self.stats.precharges += 1
            device.handle_command(
                Command(
                    kind=CommandType.PRE,
                    cycle=self.cycle,
                    bank_group=coordinate.bank_group,
                    bank=coordinate.bank,
                    row=open_row,
                )
            )
        self.cycle += self.timing.activate_cycles
        self.stats.activates += 1
        device.handle_command(
            Command(
                kind=CommandType.ACT,
                cycle=self.cycle,
                bank_group=coordinate.bank_group,
                bank=coordinate.bank,
                row=coordinate.row,
            )
        )
        self._open_rows[key] = coordinate.row
        self._bank_busy_until[key] = self.cycle + self.timing.bank_busy_cycles

    # -- convenience ------------------------------------------------------------

    @property
    def time_ns(self) -> float:
        return self.cycle * self.timing.cycle_time_ns

    def memory_bandwidth_bytes(self) -> int:
        """Total data moved over the DDR channels so far."""
        return self.stats.data_bytes
