"""DDR command records and the AxDIMM 4-slot encoding.

SmartDIMM is controlled *solely* by the command stream the host memory
controller already produces (Sec. IV-C): row activates (ACT), precharges
(PRE), read column strobes (rdCAS) and write column strobes (wrCAS).  The
buffer device runs at one quarter of the DRAM clock, so the DDR PHY packs up
to four commands into each buffer-device clock; :class:`SlotFrame` models
that packing and the slot ordering guarantee (slot 0 issues first).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

CACHELINE_SIZE = 64
PAGE_SIZE = 4096
LINES_PER_PAGE = PAGE_SIZE // CACHELINE_SIZE  # 64


class CommandType(enum.Enum):
    """The DDR4 command subset visible to the buffer device.

    CMP_RDCAS and SPAD_WB are the *new DDR commands* the paper's discussion
    proposes (Sec. IV-E): with a modifiable memory controller, a compute
    read directs DRAM data solely to the DSA — no burst travels to the
    controller, no cacheline is polluted — and a scratchpad writeback tells
    the buffer device to retire a staged line to DRAM internally.
    """

    ACT = "ACT"  # activate a row (RAS)
    PRE = "PRE"  # precharge (close) a row
    RDCAS = "rdCAS"  # read column strobe, one 64-byte burst
    WRCAS = "wrCAS"  # write column strobe, one 64-byte burst
    MMIO_WR = "MMIO_WR"  # wrCAS into SmartDIMM's MMIO config space
    MMIO_RD = "MMIO_RD"  # rdCAS from SmartDIMM's MMIO config space
    CMP_RDCAS = "cmpRdCAS"  # compute read: DRAM -> DSA only, no data burst
    SPAD_WB = "spadWB"  # scratchpad line -> DRAM, buffer-device internal


@dataclass(slots=True)
class Command:
    """One DDR command as decoded by the slot decoder.

    `address` is the 64-byte-aligned physical address for CAS commands (the
    buffer device regenerates it through the bank table + addr remap); for
    ACT/PRE it carries the row/bank coordinates only.
    """

    kind: CommandType
    cycle: int
    address: int = 0
    bank_group: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0
    data: bytes = b""

    def __post_init__(self):
        if self.kind in (CommandType.WRCAS, CommandType.MMIO_WR):
            if len(self.data) != CACHELINE_SIZE:
                raise ValueError(
                    "%s data burst must be %d bytes, got %d"
                    % (self.kind.value, CACHELINE_SIZE, len(self.data))
                )

    @property
    def is_cas(self) -> bool:
        return self.kind in (
            CommandType.RDCAS,
            CommandType.WRCAS,
            CommandType.MMIO_RD,
            CommandType.MMIO_WR,
            CommandType.CMP_RDCAS,
            CommandType.SPAD_WB,
        )

    @property
    def carries_data(self) -> bool:
        """Whether a 64-byte burst crosses the DDR data bus for this
        command; the Sec. IV-E command extensions deliberately do not."""
        return self.kind in (
            CommandType.RDCAS,
            CommandType.WRCAS,
            CommandType.MMIO_RD,
            CommandType.MMIO_WR,
        )


@dataclass
class SlotFrame:
    """Up to four DDR commands delivered in one buffer-device clock.

    The MIG PHY re-serialises slots onto consecutive DDR4 clocks, slot 0
    first; the arbiter therefore processes slots in index order.
    """

    buffer_cycle: int
    slots: list = field(default_factory=list)

    MAX_SLOTS = 4

    def add(self, command: Command) -> bool:
        """Append a command; returns False when the frame is full."""
        if len(self.slots) >= self.MAX_SLOTS:
            return False
        self.slots.append(command)
        return True

    def __iter__(self):
        return iter(self.slots)

    def __len__(self):
        return len(self.slots)


def pack_frames(commands: list, dram_cycles_per_buffer_cycle: int = 4) -> list:
    """Group a command stream into slot frames by DRAM cycle.

    Commands are assumed sorted by `cycle`; each frame covers
    `dram_cycles_per_buffer_cycle` DRAM cycles.
    """
    frames = []
    current = None
    for command in commands:
        buffer_cycle = command.cycle // dram_cycles_per_buffer_cycle
        if current is None or current.buffer_cycle != buffer_cycle or not current.add(command):
            current = SlotFrame(buffer_cycle=buffer_cycle, slots=[command])
            frames.append(current)
    return frames
