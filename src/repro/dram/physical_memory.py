"""Byte-addressable physical memory backing store.

Pages materialise lazily (zero-filled) so the model can expose large address
spaces cheaply.  All DRAM devices — plain DIMMs and SmartDIMM's SDRAM behind
the MIG PHY — share this store class.

Fault model: with a :class:`~repro.faults.plan.FaultPlan` attached
(:meth:`PhysicalMemory.attach_fault_plan`), each line read is a decision at
the ``dram.corrupt`` site.  A fired fault flips ``bits`` bits in the
returned line.  The SEC-DED ECC model (``ecc=True``, the default) corrects
single-bit flips (counted in :attr:`EccStats.corrected`) and *detects*
multi-bit flips (counted in :attr:`EccStats.detected_uncorrectable`, line
returned corrupted — the end-to-end checksum layer is what catches it);
with ``ecc=False`` every flip is silent, which is exactly the case the
CompCpy payload checksums exist for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import CACHELINE_SIZE, PAGE_SIZE
from repro.faults.plan import FaultSite


@dataclass
class EccStats:
    """Error-injection/correction counters for one memory device."""

    injected: int = 0  # faults fired (lines corrupted pre-ECC)
    corrected: int = 0  # single-bit flips scrubbed by SEC-DED
    detected_uncorrectable: int = 0  # multi-bit flips flagged but passed on
    silent: int = 0  # flips delivered with ECC disabled


class PhysicalMemory:
    """Sparse page-granular byte store."""

    def __init__(self, size: int):
        if size % PAGE_SIZE:
            raise ValueError("memory size must be a multiple of %d" % PAGE_SIZE)
        self.size = size
        self._pages = {}
        self._fault_plan = None
        self._ras = None
        self.ecc = True
        self.ecc_stats = EccStats()

    def attach_fault_plan(self, plan, ecc: bool = True) -> None:
        """Enable ``dram.corrupt`` injection on line reads through `plan`."""
        self._fault_plan = plan
        self.ecc = ecc

    def attach_ras(self, ras) -> None:
        """Enable the latent-error RAS model
        (:class:`~repro.dram.ras.MemoryRas`): line reads check for latent
        flips (CE-correct or escalate to poison) and writes repair cells.
        """
        self._ras = ras

    def _maybe_corrupt(self, address: int, data: bytes) -> bytes:
        """Apply one dram.corrupt decision to a line read."""
        plan = self._fault_plan
        if plan is None or not plan.fires(FaultSite.DRAM_CORRUPT):
            return data
        self.ecc_stats.injected += 1
        bits = int(plan.param(FaultSite.DRAM_CORRUPT, "bits", 1))
        if self.ecc and bits == 1:
            # SEC-DED corrects the flip in place; the host sees clean data.
            self.ecc_stats.corrected += 1
            return data
        corrupted = bytearray(data)
        rng = plan.rng(FaultSite.DRAM_CORRUPT)
        for _ in range(max(1, bits)):
            bit = rng.randrange(8 * CACHELINE_SIZE)
            corrupted[bit // 8] ^= 1 << (bit % 8)
        if self.ecc:
            self.ecc_stats.detected_uncorrectable += 1
        else:
            self.ecc_stats.silent += 1
        return bytes(corrupted)

    def _page(self, page_number: int, create: bool) -> bytearray:
        page = self._pages.get(page_number)
        if page is None and create:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size:
            raise ValueError(
                "access [0x%x, 0x%x) outside memory of size 0x%x"
                % (address, address + length, self.size)
            )

    def read(self, address: int, length: int) -> bytes:
        """Read `length` bytes; untouched pages read as zeros."""
        self._check_range(address, length)
        out = bytearray()
        while length:
            page_number, offset = divmod(address, PAGE_SIZE)
            chunk = min(length, PAGE_SIZE - offset)
            page = self._page(page_number, create=False)
            if page is None:
                out.extend(bytes(chunk))
            else:
                out.extend(page[offset : offset + chunk])
            address += chunk
            length -= chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write `data` at `address`."""
        self._check_range(address, len(data))
        if self._ras is not None:
            self._ras.on_write(address, len(data))
        offset_in_data = 0
        while offset_in_data < len(data):
            page_number, offset = divmod(address, PAGE_SIZE)
            chunk = min(len(data) - offset_in_data, PAGE_SIZE - offset)
            page = self._page(page_number, create=True)
            page[offset : offset + chunk] = data[offset_in_data : offset_in_data + chunk]
            address += chunk
            offset_in_data += chunk

    def read_line(self, address: int) -> bytes:
        """Read one 64-byte cacheline (must be line-aligned)."""
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned line read at 0x%x" % address)
        if self._ras is not None:
            self._ras.on_read(address)  # may raise PoisonError
        data = self.read(address, CACHELINE_SIZE)
        if self._fault_plan is not None:
            data = self._maybe_corrupt(address, data)
        return data

    def write_line(self, address: int, data: bytes) -> None:
        """Write one 64-byte cacheline (must be line-aligned)."""
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned line write at 0x%x" % address)
        if len(data) != CACHELINE_SIZE:
            raise ValueError("line write must be %d bytes" % CACHELINE_SIZE)
        self.write(address, data)

    def read_lines(self, address: int, count: int) -> bytes:
        """Read `count` consecutive cachelines (== joining read_line calls).

        With a fault plan attached this falls back to the per-line loop so
        the ``dram.corrupt`` RNG stream sees one decision per line in the
        same order as the reference path.
        """
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned line read at 0x%x" % address)
        if self._fault_plan is not None or self._ras is not None:
            return b"".join(
                self.read_line(address + (i << 6)) for i in range(count)
            )
        return self.read(address, count * CACHELINE_SIZE)

    def write_lines(self, address: int, data: bytes) -> None:
        """Write consecutive cachelines in one span."""
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned line write at 0x%x" % address)
        if len(data) % CACHELINE_SIZE:
            raise ValueError(
                "bulk line write must be a multiple of %d bytes" % CACHELINE_SIZE
            )
        self.write(address, data)

    @property
    def resident_bytes(self) -> int:
        """Bytes actually materialised (for tests and memory accounting)."""
        return PAGE_SIZE * len(self._pages)
