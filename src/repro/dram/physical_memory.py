"""Byte-addressable physical memory backing store.

Pages materialise lazily (zero-filled) so the model can expose large address
spaces cheaply.  All DRAM devices — plain DIMMs and SmartDIMM's SDRAM behind
the MIG PHY — share this store class.
"""

from __future__ import annotations

from repro.dram.commands import CACHELINE_SIZE, PAGE_SIZE


class PhysicalMemory:
    """Sparse page-granular byte store."""

    def __init__(self, size: int):
        if size % PAGE_SIZE:
            raise ValueError("memory size must be a multiple of %d" % PAGE_SIZE)
        self.size = size
        self._pages = {}

    def _page(self, page_number: int, create: bool) -> bytearray:
        page = self._pages.get(page_number)
        if page is None and create:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size:
            raise ValueError(
                "access [0x%x, 0x%x) outside memory of size 0x%x"
                % (address, address + length, self.size)
            )

    def read(self, address: int, length: int) -> bytes:
        """Read `length` bytes; untouched pages read as zeros."""
        self._check_range(address, length)
        out = bytearray()
        while length:
            page_number, offset = divmod(address, PAGE_SIZE)
            chunk = min(length, PAGE_SIZE - offset)
            page = self._page(page_number, create=False)
            if page is None:
                out.extend(bytes(chunk))
            else:
                out.extend(page[offset : offset + chunk])
            address += chunk
            length -= chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write `data` at `address`."""
        self._check_range(address, len(data))
        offset_in_data = 0
        while offset_in_data < len(data):
            page_number, offset = divmod(address, PAGE_SIZE)
            chunk = min(len(data) - offset_in_data, PAGE_SIZE - offset)
            page = self._page(page_number, create=True)
            page[offset : offset + chunk] = data[offset_in_data : offset_in_data + chunk]
            address += chunk
            offset_in_data += chunk

    def read_line(self, address: int) -> bytes:
        """Read one 64-byte cacheline (must be line-aligned)."""
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned line read at 0x%x" % address)
        return self.read(address, CACHELINE_SIZE)

    def write_line(self, address: int, data: bytes) -> None:
        """Write one 64-byte cacheline (must be line-aligned)."""
        if address % CACHELINE_SIZE:
            raise ValueError("unaligned line write at 0x%x" % address)
        if len(data) != CACHELINE_SIZE:
            raise ValueError("line write must be %d bytes" % CACHELINE_SIZE)
        self.write(address, data)

    @property
    def resident_bytes(self) -> int:
        """Bytes actually materialised (for tests and memory accounting)."""
        return PAGE_SIZE * len(self._pages)
