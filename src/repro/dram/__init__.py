"""DDR4 memory substrate.

Models the pieces of the memory system SmartDIMM's offload model depends on:

* :mod:`repro.dram.address` — physical-address ↔ DRAM-coordinate mapping
  with configurable channel interleaving (Sec. V-D).
* :mod:`repro.dram.commands` — ACT/PRE/rdCAS/wrCAS command records and the
  4-slot-per-buffer-clock encoding AxDIMM uses (Sec. IV-C).
* :mod:`repro.dram.physical_memory` — byte-addressable backing store.
* :mod:`repro.dram.memory_controller` — a command-level memory controller
  with open-page policy, write batching, read priority, and ALERT_N retry.

The model is command-accurate, not AC-timing-accurate: correctness of
CompCpy depends on which commands arrive at the buffer device and in what
order, not on sub-nanosecond DDR timing.
"""

from repro.dram.address import AddressMapping, DramCoordinate, InterleaveMode
from repro.dram.commands import Command, CommandType, CACHELINE_SIZE, PAGE_SIZE
from repro.dram.physical_memory import PhysicalMemory
from repro.dram.memory_controller import MemoryController, PlainDIMM

__all__ = [
    "AddressMapping",
    "DramCoordinate",
    "InterleaveMode",
    "Command",
    "CommandType",
    "CACHELINE_SIZE",
    "PAGE_SIZE",
    "PhysicalMemory",
    "MemoryController",
    "PlainDIMM",
]
