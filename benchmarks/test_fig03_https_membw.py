"""Fig. 3: HTTPS memory-bandwidth utilisation normalised to HTTP.

Paper result (Sec. III, Observation 3): as concurrent connections grow, the
HTTPS server's memory traffic rises to ~2.5x an HTTP server doing the same
transfers — the cache-thrashing cost of on-CPU ULP processing.
"""

from conftest import run_once

from repro.sim.server import Placement, ServerModel, Ulp, WorkloadSpec

CONNECTIONS = [64, 128, 256, 512, 1024, 2048]
MESSAGE = 8192
SWEEP_KWARGS = dict(message_bytes=MESSAGE, background_pressure_bytes=2e6)
MISS_CURVE_K = 0.6  # low-background sweep configuration (see DESIGN.md)


def _ratio(connections):
    http = ServerModel(
        WorkloadSpec(ulp=Ulp.NONE, placement=Placement.CPU, connections=connections, **SWEEP_KWARGS),
        miss_curve_k=MISS_CURVE_K,
    ).solve()
    https = ServerModel(
        WorkloadSpec(ulp=Ulp.TLS, placement=Placement.CPU, connections=connections, **SWEEP_KWARGS),
        miss_curve_k=MISS_CURVE_K,
    ).solve()
    return https.membw_bytes_per_request / http.membw_bytes_per_request


def test_fig03_https_membw_ratio(benchmark, report):
    ratios = run_once(benchmark, lambda: [(c, _ratio(c)) for c in CONNECTIONS])
    lines = ["Fig. 3 — HTTPS memory bandwidth per request, normalised to HTTP",
             f"{'connections':>12} {'HTTPS/HTTP':>11}"]
    for connections, ratio in ratios:
        lines.append(f"{connections:>12d} {ratio:>11.2f}")
    report("fig03_https_membw", lines)

    values = [ratio for _, ratio in ratios]
    # Rising with connection count until both curves saturate; a small
    # plateau/dip at the top is tolerated (the miss curves flatten at 1).
    for left, right in zip(values, values[1:]):
        assert right >= left - 0.08
    assert values[0] < min(values[3:])  # low-conn clearly below high-conn
    # Low-concurrency overhead is modest; high concurrency reaches ~2.5x.
    assert values[0] < 2.2
    assert 2.2 < max(values) < 3.2
