"""Fig. 9: rdCAS/wrCAS traces from concurrent CompCpy offloads.

Paper result (Sec. VII-A): with multiple cores offloading concurrently, the
read commands of the in-flight CompCpy sweep addresses monotonically (the
"magnified" inset), while the interleaved write commands belong to the
self-recycle of destination buffers accessed *earlier*.
"""

from conftest import run_once

from repro.core.dsa.base import UlpKind
from repro.core.dsa.tls_dsa import TLSOffloadContext
from repro.core.offload_api import SessionConfig, SmartDIMMSession
from repro.dram.commands import PAGE_SIZE
from repro.sim.tracing import CommandTraceRecorder

STREAMS = 4  # "4 cores concurrently offloading"
CALLS_PER_STREAM = 3
SPACING_PAGES = 512  # spread the streams' buffers far apart (paper: 32MB)


def _run_trace():
    session = SmartDIMMSession(
        SessionConfig(memory_bytes=96 * 1024 * 1024, llc_bytes=128 * 1024,
                      rows=1 << 11, trace=True)
    )
    key, nonce = bytes(16), bytes(12)
    spans = []  # (sbuf_range, dbuf_range, call_order)
    order = 0
    for call in range(CALLS_PER_STREAM):
        for stream in range(STREAMS):
            base_page = 2 * (stream * CALLS_PER_STREAM + call) * SPACING_PAGES + 16
            # Buffers placed at explicit, widely spaced physical addresses
            # (the paper spaces its streams 32MB apart).
            sbuf = base_page * PAGE_SIZE
            dbuf = (base_page + SPACING_PAGES) * PAGE_SIZE
            session.write(sbuf, bytes(PAGE_SIZE))
            context = TLSOffloadContext(key=key, nonce=nonce, record_length=PAGE_SIZE - 16)
            session.compcpy.compcpy(
                dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT,
                flush_destination=False,  # recycling happens via LLC pressure
            )
            spans.append(((sbuf, sbuf + PAGE_SIZE), (dbuf, dbuf + PAGE_SIZE), order))
            order += 1
    recorder = CommandTraceRecorder(session.mc)
    return session, recorder, spans


def test_fig09_trace_shape(benchmark, report):
    session, recorder, spans = run_once(benchmark, _run_trace)

    lines = ["Fig. 9 — CompCpy command-trace characterisation",
             f"{'call':>4} {'rdCAS':>6} {'wrCAS(dbuf)':>11} {'monotonic':>9} {'slack(cyc)':>10}"]
    monotonic_fractions = []
    for index, (sbuf_range, dbuf_range, order) in enumerate(spans):
        summary = recorder.summarize(sbuf_range, dbuf_range)
        monotonic_fractions.append(summary.read_addresses_monotonic_fraction)
        lines.append(
            f"{order:>4d} {summary.reads:>6d} {summary.writes:>11d} "
            f"{summary.read_addresses_monotonic_fraction:>9.3f} "
            f"{summary.read_write_slack_cycles:>10d}"
        )
    total_writes = len(recorder.entries("wrCAS"))
    total_reads = len(recorder.entries("rdCAS"))
    lines.append(f"total rdCAS={total_reads} wrCAS={total_writes} "
                 f"self_recycles={session.device.stats.self_recycles}")
    # The figure itself: command cycle vs physical address, r=rdCAS w=wrCAS.
    from repro.analysis.plots import render_scatter

    points = [(cycle, address, kind) for cycle, kind, address in recorder.scatter()]
    lines.append("")
    lines.append(render_scatter(points, width=72, height=22).rstrip())
    report("fig09_memory_trace", lines)

    # The magnified inset: addresses increase monotonically within a call.
    assert min(monotonic_fractions) > 0.95
    # Self-recycle writes happened (LLC pressure evicted earlier dbufs)...
    assert session.device.stats.self_recycles > 0
    # ...and writes to a dbuf only appear once its CompCpy already started:
    # every wrCAS to a registered dbuf belongs to a call earlier or equal in
    # program order than the newest read activity.
    read_entries = recorder.entries("rdCAS")
    assert read_entries
    # Each CompCpy read exactly 64 sbuf lines through the channel.
    for sbuf_range, _, _ in spans:
        reads = recorder.entries("rdCAS", sbuf_range)
        assert len(reads) >= 64
