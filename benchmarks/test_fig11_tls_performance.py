"""Fig. 11: Nginx TLS performance across accelerator placements.

Paper results (Sec. VII-B), all normalised to the CPU configuration:

* SmartDIMM: +21.0% RPS at 4KB, +35.8% at 16KB; -49.1% memory bandwidth
  and -21.8% CPU cost at 4KB.
* SmartNIC and QuickAssist both fail to improve 4KB messages (offload
  initialisation overhead); SmartNIC does outperform the CPU at 16KB.
* At 64KB SmartDIMM still holds +11.9% RPS over the SmartNIC at lower
  CPU and memory cost.
"""

from conftest import run_once

from repro.sim.server import Placement, ServerModel, Ulp, WorkloadSpec

MESSAGES = [4096, 16384, 65536]
PLACEMENTS = [Placement.CPU, Placement.SMARTNIC, Placement.QUICKASSIST, Placement.SMARTDIMM]


def _sweep():
    table = {}
    for message in MESSAGES:
        for placement in PLACEMENTS:
            spec = WorkloadSpec(ulp=Ulp.TLS, placement=placement, message_bytes=message)
            table[(message, placement)] = ServerModel(spec).solve()
    return table


def test_fig11_tls_placements(benchmark, report):
    table = run_once(benchmark, _sweep)

    lines = ["Fig. 11 — Nginx TLS, normalised to the CPU configuration",
             f"{'msg':>6} {'placement':>12} {'RPS':>6} {'CPU cyc/req':>11} {'mem BW/req':>10}"]
    for message in MESSAGES:
        base = table[(message, Placement.CPU)]
        for placement in PLACEMENTS:
            metrics = table[(message, placement)]
            lines.append(
                f"{message:>6d} {placement.value:>12} "
                f"{metrics.rps / base.rps:>6.2f} "
                f"{metrics.cycles_per_request / base.cycles_per_request:>11.2f} "
                f"{metrics.membw_bytes_per_request / base.membw_bytes_per_request:>10.2f}"
            )
    from repro.analysis.plots import render_bars

    lines.append("")
    lines.append(
        render_bars(
            {
                "RPS, %dB (normalised to CPU)" % message: {
                    placement.value: table[(message, placement)].rps
                    / table[(message, Placement.CPU)].rps
                    for placement in PLACEMENTS
                }
                for message in MESSAGES
            }
        ).rstrip()
    )
    report("fig11_tls_performance", lines)

    def ratio(message, placement, attribute="rps"):
        return getattr(table[(message, placement)], attribute) / getattr(
            table[(message, Placement.CPU)], attribute
        )

    # SmartDIMM RPS gains (paper: +21.0% / +35.8%).
    assert 1.05 < ratio(4096, Placement.SMARTDIMM) < 1.6
    assert 1.15 < ratio(16384, Placement.SMARTDIMM) < 1.7
    assert ratio(16384, Placement.SMARTDIMM) > ratio(4096, Placement.SMARTDIMM)
    # SmartDIMM memory-bandwidth reduction (paper: -49.1% at 4KB).
    assert 0.35 < ratio(4096, Placement.SMARTDIMM, "membw_bytes_per_request") < 0.65
    # SmartDIMM CPU-cost reduction (paper: -21.8% at 4KB).
    assert ratio(4096, Placement.SMARTDIMM, "cycles_per_request") < 0.9
    # SmartNIC: no improvement at 4KB, a win at 16KB.
    assert 0.92 < ratio(4096, Placement.SMARTNIC) < 1.08
    assert ratio(16384, Placement.SMARTNIC) > 1.05
    # QuickAssist: fails for fine-grain TLS offload.
    assert ratio(4096, Placement.QUICKASSIST) < 0.75
    assert ratio(16384, Placement.QUICKASSIST) < 0.75
    # 64KB: SmartDIMM over SmartNIC (paper: +11.9% RPS, lower CPU and BW).
    sdimm, nic = table[(65536, Placement.SMARTDIMM)], table[(65536, Placement.SMARTNIC)]
    assert 1.03 < sdimm.rps / nic.rps < 1.35
    assert sdimm.cycles_per_request < nic.cycles_per_request
    assert sdimm.membw_bytes_per_request < nic.membw_bytes_per_request
