"""Sec. IV-C claim: a 3-ary cuckoo table at <33% occupancy inserts nearly
always immediately or with one displacement, with effectively zero failures
— the argument for replacing a CAM with a hashed translation table.
"""

import random

from conftest import run_once

from repro.core.translation_table import TranslationEntry, TranslationTable

LIVE_ENTRIES = 4096  # 2048 scratchpad + 2048 config pages
SLOTS = 12288  # 3x headroom
CHURN_OPS = 60_000


def _churn():
    table = TranslationTable(slots=SLOTS)
    rng = random.Random(17)
    live = []
    for _ in range(CHURN_OPS):
        # Bias toward insertion so the table operates near its provisioned
        # occupancy (4096 live mappings), where the sizing claim matters.
        if live and (len(live) >= LIVE_ENTRIES or rng.random() < 0.25):
            table.remove(live.pop(rng.randrange(len(live))))
        else:
            page = rng.getrandbits(44)
            if page not in table:
                table.insert(
                    TranslationEntry(page_number=page, is_config=False, target_offset=0)
                )
                live.append(page)
    stats = table.stats()
    stats["peak_live"] = max(len(live), stats["inserts"] - CHURN_OPS // 2)
    stats["final_live"] = len(live)
    return stats


def test_cuckoo_sizing_claim(benchmark, report):
    stats = run_once(benchmark, _churn)
    easy = stats["immediate_inserts"] + stats["single_displacement_inserts"]
    lines = ["Sec. IV-C claim — 3-ary cuckoo translation table under churn",
             f"inserts:                     {stats['inserts']}",
             f"immediate:                   {stats['immediate_inserts']}",
             f"single displacement:         {stats['single_displacement_inserts']}",
             f"immediate-or-1-displacement: {easy / stats['inserts']:.4%}",
             f"CAM spills:                  {stats['cam_spills']}",
             f"failures:                    {stats['failures']}",
             f"final live mappings:         {stats['final_live']}",
             f"final occupancy:             {stats['occupancy']:.1%} (< 33% by sizing)"]
    report("claim_cuckoo", lines)

    assert stats["failures"] == 0
    assert easy / stats["inserts"] > 0.995
    assert stats["occupancy"] < 0.34
    assert stats["final_live"] > LIVE_ENTRIES * 0.8  # claim tested at load
    assert stats["cam_spills"] == 0
