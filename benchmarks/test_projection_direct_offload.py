"""Projection: end-to-end impact of the Sec. IV-E direct-offload model.

The paper's discussion predicts that new DDR commands "could eliminate
cache pollution entirely" and "conserve DDR data bandwidth".  The micro
ablation (`test_ablation_direct_offload.py`) verified both at command
level; this bench projects the end-to-end effect through the macro model:
what Fig. 11 would look like with a modifiable memory controller.

This is a design study beyond the paper's evaluated prototype — labelled
as such in DESIGN.md.
"""

from conftest import run_once

from repro.sim.server import Placement, ServerModel, Ulp, WorkloadSpec

MESSAGES = [4096, 16384]
PLACEMENTS = [Placement.CPU, Placement.SMARTDIMM, Placement.SMARTDIMM_DIRECT]


def _sweep():
    table = {}
    for message in MESSAGES:
        for placement in PLACEMENTS:
            spec = WorkloadSpec(ulp=Ulp.TLS, placement=placement, message_bytes=message)
            table[(message, placement)] = ServerModel(spec).solve()
    return table


def test_direct_offload_projection(benchmark, report):
    table = run_once(benchmark, _sweep)
    lines = ["Projection — TLS with the Sec. IV-E direct-offload model",
             f"{'msg':>6} {'placement':>17} {'RPS':>6} {'CPU/req':>8} {'memBW/req':>10}"]
    for message in MESSAGES:
        base = table[(message, Placement.CPU)]
        for placement in PLACEMENTS:
            metrics = table[(message, placement)]
            lines.append(
                f"{message:>6d} {placement.value:>17} "
                f"{metrics.rps / base.rps:>6.2f} "
                f"{metrics.cycles_per_request / base.cycles_per_request:>8.2f} "
                f"{metrics.membw_bytes_per_request / base.membw_bytes_per_request:>10.2f}"
            )
    report("projection_direct_offload", lines)

    for message in MESSAGES:
        compcpy = table[(message, Placement.SMARTDIMM)]
        direct = table[(message, Placement.SMARTDIMM_DIRECT)]
        # Direct mode strictly dominates the CompCpy prototype.
        assert direct.rps > compcpy.rps
        assert direct.cycles_per_request < compcpy.cycles_per_request
        assert direct.membw_bytes_per_request < compcpy.membw_bytes_per_request
        # But the gain is incremental (tens of percent), not another order:
        # CompCpy already removed the dominant ULP cost.
        assert direct.rps < compcpy.rps * 1.8
