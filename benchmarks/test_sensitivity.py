"""Sensitivity analysis: do the paper's conclusions survive cost-model error?

The macro model's constants are calibrated, not measured (EXPERIMENTS.md,
fidelity gap #1).  This bench perturbs the most influential constants by
±2x and checks that the *qualitative* conclusions — SmartDIMM wins TLS
under contention, compression gains are an order of magnitude, QuickAssist
loses fine-grain offloads — hold across the whole perturbation grid.
"""

import itertools

from conftest import run_once

from repro.cpu.costs import DEFAULT_COSTS
from repro.sim.server import Placement, ServerModel, Ulp, WorkloadSpec

PERTURBATIONS = {
    "aesni_cycles_per_byte": (0.5, 2.0),
    "deflate_cycles_per_byte": (0.5, 2.0),
    "per_core_miss_bandwidth": (0.5, 2.0),
    "stack_touch_bytes_per_request": (0.5, 2.0),
}


def _conclusions(costs):
    def solve(ulp, placement, msg=4096):
        return ServerModel(
            WorkloadSpec(ulp=ulp, placement=placement, message_bytes=msg), costs=costs
        ).solve()

    tls_cpu = solve(Ulp.TLS, Placement.CPU)
    tls_sd = solve(Ulp.TLS, Placement.SMARTDIMM)
    tls_qat = solve(Ulp.TLS, Placement.QUICKASSIST)
    def_cpu = solve(Ulp.DEFLATE, Placement.CPU)
    def_sd = solve(Ulp.DEFLATE, Placement.SMARTDIMM)
    return {
        "smartdimm_tls_wins": tls_sd.rps > tls_cpu.rps,
        "smartdimm_tls_less_membw": tls_sd.membw_bytes_per_request
        < tls_cpu.membw_bytes_per_request,
        "qat_tls_loses": tls_qat.rps < tls_cpu.rps,
        "deflate_multiple": def_sd.rps / def_cpu.rps,
    }


def _grid():
    rows = []
    keys = list(PERTURBATIONS)
    for multipliers in itertools.product(*(PERTURBATIONS[k] for k in keys)):
        overrides = {}
        for key, multiplier in zip(keys, multipliers):
            base = getattr(DEFAULT_COSTS, key)
            value = base * multiplier
            overrides[key] = int(value) if isinstance(base, int) else value
        costs = DEFAULT_COSTS.with_overrides(**overrides)
        rows.append((multipliers, _conclusions(costs)))
    return rows


def test_conclusions_stable_under_perturbation(benchmark, report):
    rows = run_once(benchmark, _grid)
    keys = list(PERTURBATIONS)
    lines = ["Sensitivity — conclusions across a +/-2x cost-constant grid",
             "perturbed: " + ", ".join(keys),
             f"{'multipliers':>24} {'TLS win':>8} {'BW win':>7} {'QAT loses':>9} {'deflate x':>9}"]
    for multipliers, conclusions in rows:
        lines.append(
            f"{str(multipliers):>24} {str(conclusions['smartdimm_tls_wins']):>8} "
            f"{str(conclusions['smartdimm_tls_less_membw']):>7} "
            f"{str(conclusions['qat_tls_loses']):>9} "
            f"{conclusions['deflate_multiple']:>9.1f}"
        )
    lines.append(
        "note: the TLS-RPS win flips only when AES is halved AND memory "
        "stalls are halved simultaneously — i.e. cheap crypto on an "
        "uncontended memory system, precisely the regime where the paper "
        "itself says to run ULPs on the CPU (Sec. VI)."
    )
    report("sensitivity", lines)

    for multipliers, conclusions in rows:
        aes_mult, _, missbw_mult, _ = multipliers
        # Memory-traffic and QAT conclusions are unconditional.
        assert conclusions["smartdimm_tls_less_membw"], multipliers
        assert conclusions["qat_tls_loses"], multipliers
        assert conclusions["deflate_multiple"] > 2.5, multipliers
        # The TLS RPS win requires actual contention pressure: it may flip
        # only in the cheap-crypto + relaxed-memory corner.
        if not (aes_mult < 1.0 and missbw_mult > 1.0):
            assert conclusions["smartdimm_tls_wins"], multipliers
