"""Ablation: deflate parallelisation window vs ratio, conflicts, and area.

Sec. V-B fixes the window at 8 bytes: widening it "marginally improves the
compression ratio and bandwidth" but "exponentially raises the memory
requirements and the logic complexity".  We sweep the window with memory
scaled alongside (as hardware must) and report ratio, bank-conflict rate,
and the modelled FPGA area.
"""

import zlib

from conftest import run_once

from repro.analysis.power import PowerModel
from repro.core.dsa.deflate_dsa import HardwareMatcher
from repro.dram.commands import PAGE_SIZE
from repro.ulp.bitstream import BitWriter
from repro.ulp.deflate import write_fixed_block
from repro.workloads.corpus import CorpusKind, generate_corpus

WINDOWS = [4, 8, 16]
PAGES = 12


def _run():
    model = PowerModel()
    corpus = [
        generate_corpus(kind, PAGE_SIZE, seed=i)
        for i, kind in enumerate(
            [CorpusKind.HTML, CorpusKind.TEXT, CorpusKind.JSON, CorpusKind.LOG] * 3
        )
    ][:PAGES]
    rows = []
    for window in WINDOWS:
        compressed = 0
        conflicts = 0
        lookups = 0
        for page in corpus:
            matcher = HardwareMatcher(
                window_bytes=window, banks=2 * window, bucket_depth=window // 2 or 1,
                hash_buckets=64 * window,
            )
            writer = BitWriter()
            tokens = matcher.tokenize(page)
            write_fixed_block(writer, tokens, final=True)
            stream = writer.getvalue()
            assert zlib.decompress(stream, -15) == page
            compressed += len(stream)
            conflicts += matcher.bank_conflicts
            lookups += matcher.lookups
        area = model.deflate_dsa_resources(window)
        rows.append(
            {
                "window": window,
                "ratio": compressed / (PAGES * PAGE_SIZE),
                "conflict_rate": conflicts / lookups,
                "luts": area.luts,
                "bytes_per_cycle": window,
            }
        )
    return rows


def test_deflate_window_ablation(benchmark, report):
    rows = run_once(benchmark, _run)
    lines = ["Ablation — deflate parallelisation window (memory scaled with window)",
             f"{'window':>6} {'ratio':>7} {'conflict rate':>13} {'kLUTs':>7} {'B/cycle':>7}"]
    for row in rows:
        lines.append(
            f"{row['window']:>6d} {row['ratio']:>7.3f} {row['conflict_rate']:>13.3f} "
            f"{row['luts'] / 1000:>7.1f} {row['bytes_per_cycle']:>7d}"
        )
    report("ablation_deflate_window", lines)

    ratios = [row["ratio"] for row in rows]
    # Ratio moves only marginally across the sweep...
    assert max(ratios) / min(ratios) < 1.15
    # ...throughput scales linearly with the window...
    assert rows[-1]["bytes_per_cycle"] == 4 * rows[0]["bytes_per_cycle"]
    # ...but area grows superlinearly: the paper's reason to stop at 8.
    luts = [row["luts"] for row in rows]
    assert luts[2] > 2.5 * luts[1] > 2.5 * 2.5 * luts[0] / 2.5
    assert luts[2] / luts[0] > (WINDOWS[2] / WINDOWS[0]) ** 1.3
