"""Fig. 2: achievable bandwidth over an encrypted connection under drops.

Paper result (Sec. III, Observation 1): SmartNIC TLS offload delivers the
same or slightly lower throughput than AES-NI at zero loss, and its
advantage disappears entirely — falling below the CPU — once packets drop,
because every retransmission forces a CPU fallback plus hardware resync.
"""

from conftest import run_once

from repro.net.link import LossyLink
from repro.net.smartnic import CpuTlsCrypto, NoCrypto, SmartNicTlsCrypto
from repro.net.tcp import TcpSimulation

DROP_RATES = [0.0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2]
TRANSFER_BYTES = 20_000_000


def _goodput(crypto_factory, drop_rate, seed=1):
    link = LossyLink(drop_rate=drop_rate, seed=seed)
    sim = TcpSimulation(TRANSFER_BYTES, crypto_factory(), link, initial_rto_s=5e-3)
    return sim.run().goodput_gbps


def _sweep():
    rows = []
    for drop in DROP_RATES:
        rows.append(
            {
                "drop": drop,
                "http": _goodput(NoCrypto, drop),
                "cpu": _goodput(CpuTlsCrypto, drop),
                "smartnic": _goodput(SmartNicTlsCrypto, drop),
            }
        )
    return rows


def test_fig02_smartnic_vs_cpu_under_drops(benchmark, report):
    rows = run_once(benchmark, _sweep)
    lines = ["Fig. 2 — encrypted-connection goodput (Gbps) vs drop rate",
             f"{'drop rate':>10} {'HTTP':>8} {'CPU':>8} {'SmartNIC':>9}"]
    for row in rows:
        lines.append(
            f"{row['drop']:>10.4%} {row['http']:>8.2f} {row['cpu']:>8.2f} {row['smartnic']:>9.2f}"
        )
    report("fig02_smartnic_drops", lines)

    zero = rows[0]
    # Zero loss: offload gives "the same, or even lower" throughput.
    assert zero["smartnic"] <= zero["cpu"] * 1.05
    assert zero["smartnic"] >= zero["cpu"] * 0.8
    # Under meaningful loss the SmartNIC falls clearly below the CPU.
    for row in rows:
        if row["drop"] >= 1e-3:
            assert row["smartnic"] < row["cpu"]
    worst = rows[-1]
    assert worst["smartnic"] < worst["cpu"] * 0.9
    # And everything degrades with loss (TCP behaves).
    assert worst["cpu"] < zero["cpu"] * 0.5
