"""Fig. 13: the ULP-processing design-space comparison matrix.

Paper result (Sec. VIII): across performance-under-contention, transport
compatibility, ULP diversity, loss resilience, and transport flexibility,
SmartDIMM covers the criteria best; autonomous SmartNIC offload is weakest
on loss resilience and ULP diversity, and TOEs freeze the transport layer.
"""

from conftest import run_once

from repro.analysis.design_space import CRITERIA, OPTIONS, DesignSpace


def test_fig13_matrix(benchmark, report):
    space = run_once(benchmark, DesignSpace)

    width = max(len(option) for option in OPTIONS)
    lines = ["Fig. 13 — design-space scores (0-3, higher is better)"]
    header = "criterion".ljust(38) + "  ".join(option.rjust(width) for option in OPTIONS)
    lines.append(header)
    for criterion in CRITERIA:
        row = criterion.ljust(38)
        row += "  ".join(str(space.score(option, criterion)).rjust(width) for option in OPTIONS)
        lines.append(row)
        lines.append("    rationale: " + space.rationale(criterion))
    totals = space.totals()
    lines.append("totals".ljust(38) + "  ".join(str(totals[o]).rjust(width) for o in OPTIONS))
    report("fig13_design_space", lines)

    assert totals["smartdimm"] == max(totals.values())
    assert space.score("smartdimm", "high_llc_contention_performance") == 3
    assert space.score("smartnic_autonomous", "loss_reorder_resilience") <= 1
    assert space.score("smartnic_autonomous", "ulp_diversity") <= 1
    assert space.score("smartnic_toe", "transport_flexibility") == 0
    # The CPU keeps maximal flexibility scores even where it loses on speed.
    for criterion in ("transport_compatibility", "ulp_diversity", "transport_flexibility"):
        assert space.score("cpu", criterion) == 3
