"""Ablation: the adaptive engine's LLC-contention threshold.

The offload engine's miss-rate threshold is "a configurable parameter"
(Sec. V-C) that cache partitioning shifts.  We sweep it under a mixed
workload phase profile: a permissive threshold offloads everything, a
strict one offloads nothing, and intermediate settings track the actual
contention phases.
"""

from conftest import run_once

from repro.apps.mcf import McfKernel
from repro.core.engine import AdaptiveOffloadEngine, OffloadDecision
from repro.core.offload_api import SessionConfig, SmartDIMMSession

THRESHOLDS = [0.02, 0.3, 0.6, 1.0]
DECISIONS_PER_PHASE = 40


def _run(threshold):
    session = SmartDIMMSession(
        SessionConfig(memory_bytes=32 * 1024 * 1024, llc_bytes=128 * 1024)
    )
    engine = AdaptiveOffloadEngine(session.llc, miss_rate_threshold=threshold, sample_every=4)
    offloads = {"calm": 0, "thrash": 0}
    # Warm the hot set so the calm phase measures steady state, not
    # compulsory misses.
    for i in range(64):
        session.llc.load((i % 32) * 64)
    engine.decide()  # absorb the warm-up window
    # Calm phase: a hot working set that fits.
    for i in range(DECISIONS_PER_PHASE):
        session.llc.load((i % 32) * 64)
        if engine.decide() is OffloadDecision.SMARTDIMM:
            offloads["calm"] += 1
    # Thrash phase: mcf blows the cache between decisions.
    kernel = McfKernel(session.llc, base_address=16 * 1024 * 1024, footprint_bytes=2 << 20)
    for _ in range(DECISIONS_PER_PHASE):
        kernel.step(100)
        if engine.decide() is OffloadDecision.SMARTDIMM:
            offloads["thrash"] += 1
    return offloads


def test_adaptive_threshold_ablation(benchmark, report):
    results = run_once(benchmark, lambda: {t: _run(t) for t in THRESHOLDS})
    lines = ["Ablation — adaptive offload threshold sweep "
             f"({DECISIONS_PER_PHASE} decisions per phase)",
             f"{'threshold':>9} {'offloads (calm)':>15} {'offloads (thrash)':>17}"]
    for threshold, offloads in results.items():
        lines.append(f"{threshold:>9.2f} {offloads['calm']:>15d} {offloads['thrash']:>17d}")
    report("ablation_adaptive_threshold", lines)

    # A permissive threshold offloads the thrash phase almost entirely
    # (the first few decisions reuse the pre-switch sample window).
    assert results[0.02]["thrash"] >= DECISIONS_PER_PHASE * 0.9
    # The degenerate threshold of 1.0 can never be exceeded: pure onload.
    assert results[1.0]["calm"] == 0
    assert results[1.0]["thrash"] == 0
    # A sane middle threshold discriminates the phases.
    assert results[0.3]["calm"] < DECISIONS_PER_PHASE * 0.3
    assert results[0.3]["thrash"] > DECISIONS_PER_PHASE * 0.7
