"""Fig. 12: Nginx compression performance across placements.

Paper results (Sec. VII-B), normalised to the CPU configuration:

* SmartDIMM: 5.09x RPS at 4KB and 10.28x at 16KB, with -81.5% CPU cost and
  -88.9% memory bandwidth.
* QuickAssist provides no RPS improvement (synchronous fine-grain offload)
  and *increases* CPU/memory cost relative to its throughput.
* SmartNIC is absent: compression is non-size-preserving (Observation 1).
"""

import pytest
from conftest import run_once

from repro.sim.server import Placement, ServerModel, Ulp, WorkloadSpec

MESSAGES = [4096, 16384]
PLACEMENTS = [Placement.CPU, Placement.QUICKASSIST, Placement.SMARTDIMM]


def _sweep():
    table = {}
    for message in MESSAGES:
        for placement in PLACEMENTS:
            spec = WorkloadSpec(ulp=Ulp.DEFLATE, placement=placement, message_bytes=message)
            table[(message, placement)] = ServerModel(spec).solve()
    return table


def test_fig12_compression_placements(benchmark, report):
    table = run_once(benchmark, _sweep)

    lines = ["Fig. 12 — Nginx compression, normalised to the CPU configuration",
             f"{'msg':>6} {'placement':>12} {'RPS':>7} {'CPU cyc/req':>11} {'mem BW/req':>10}"]
    for message in MESSAGES:
        base = table[(message, Placement.CPU)]
        for placement in PLACEMENTS:
            metrics = table[(message, placement)]
            lines.append(
                f"{message:>6d} {placement.value:>12} "
                f"{metrics.rps / base.rps:>7.2f} "
                f"{metrics.cycles_per_request / base.cycles_per_request:>11.2f} "
                f"{metrics.membw_bytes_per_request / base.membw_bytes_per_request:>10.2f}"
            )
    report("fig12_compression_performance", lines)

    def ratio(message, placement, attribute="rps"):
        return getattr(table[(message, placement)], attribute) / getattr(
            table[(message, Placement.CPU)], attribute
        )

    # SmartDIMM multiples (paper: 5.09x / 10.28x) and their ordering.
    assert 4.0 < ratio(4096, Placement.SMARTDIMM) < 12.0
    assert 8.0 < ratio(16384, Placement.SMARTDIMM) < 13.0
    assert ratio(16384, Placement.SMARTDIMM) > ratio(4096, Placement.SMARTDIMM)
    # SmartDIMM resource reductions (paper: -81.5% CPU, -88.9% memory BW).
    assert ratio(4096, Placement.SMARTDIMM, "cycles_per_request") < 0.25
    assert ratio(16384, Placement.SMARTDIMM, "membw_bytes_per_request") < 0.3
    # QuickAssist: no RPS gain for either size.
    for message in MESSAGES:
        assert 0.7 < ratio(message, Placement.QUICKASSIST) < 1.4
    # Compression gains dwarf the TLS gains (AES-NI narrows TLS, Sec. VII-B).
    tls = ServerModel(WorkloadSpec(ulp=Ulp.TLS, placement=Placement.SMARTDIMM)).solve()
    tls_base = ServerModel(WorkloadSpec(ulp=Ulp.TLS, placement=Placement.CPU)).solve()
    assert ratio(4096, Placement.SMARTDIMM) > 2 * tls.rps / tls_base.rps


def test_fig12_smartnic_structurally_excluded():
    with pytest.raises(ValueError):
        WorkloadSpec(ulp=Ulp.DEFLATE, placement=Placement.SMARTNIC)
