"""Ablation: ordered (fence-per-64B) vs unordered CompCpy.

Algorithm 2 inserts a memory barrier between 64-byte segments only when the
DSA is order-sensitive (deflate).  The fences force the write queue to
drain per line, costing controller cycles — the price non-incrementally-
parallel ULPs pay.
"""

from conftest import run_once

from repro.core.dsa.base import UlpKind
from repro.core.dsa.tls_dsa import TLSOffloadContext
from repro.core.offload_api import SessionConfig, SmartDIMMSession
from repro.dram.commands import PAGE_SIZE


def _run(ordered):
    session = SmartDIMMSession(
        SessionConfig(memory_bytes=16 * 1024 * 1024, llc_bytes=512 * 1024)
    )
    key, nonce = bytes(16), bytes(12)
    start = session.mc.cycle
    for i in range(4):
        sbuf = session.driver.alloc_pages(1)
        dbuf = session.driver.alloc_pages(1)
        session.write(sbuf, bytes([i]) * PAGE_SIZE)
        context = TLSOffloadContext(key=key, nonce=nonce, record_length=PAGE_SIZE - 16)
        session.compcpy.compcpy(
            dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT, ordered=ordered
        )
        session.driver.free_pages(sbuf)
        session.driver.free_pages(dbuf)
    return session.mc.cycle - start


def test_ordered_copy_costs_cycles(benchmark, report):
    results = run_once(benchmark, lambda: {flag: _run(flag) for flag in (False, True)})
    overhead = results[True] / results[False] - 1
    report(
        "ablation_ordered_copy",
        [
            "Ablation — ordered vs unordered CompCpy (4x 4KB TLS offloads)",
            f"unordered copy: {results[False]:>8d} controller cycles",
            f"ordered copy:   {results[True]:>8d} controller cycles",
            f"ordering tax:   {overhead:>8.1%}",
        ],
    )
    # Ordering costs something real but not pathological.
    assert results[True] > results[False]
    assert overhead < 2.0
