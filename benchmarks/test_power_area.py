"""Sec. VII-D: power and FPGA-area estimates.

Paper results: 4.78W dynamic at full DDR utilisation; ~0.92W average added
power across benchmarks (which keep the channel below 30% utilisation); the
TLS offload occupies ~21.8% of the AxDIMM FPGA.
"""

from conftest import run_once

from repro.analysis.power import AXDIMM_FPGA, PowerModel


def _evaluate():
    model = PowerModel()
    return {
        "full": model.full_activity_watts(),
        "avg": model.report(channel_utilisation=0.19, deflate=False).dynamic_watts,
        "tls_fraction": model.tls_utilisation_fraction(),
        "breakdown": model.report(1.0).breakdown,
        "cam_penalty": model.TRANSLATION_CAM_ALTERNATIVE_W / model.TRANSLATION_TABLE_W,
    }


def test_power_and_area(benchmark, report):
    result = run_once(benchmark, _evaluate)
    lines = ["Sec. VII-D — power and area",
             f"dynamic power at full channel utilisation: {result['full']:.2f} W (paper: 4.78 W)",
             f"average added power (<30% utilisation):    {result['avg']:.2f} W (paper: ~0.92 W)",
             f"TLS offload FPGA utilisation:              {result['tls_fraction']:.1%} (paper: ~21.8%)",
             f"CAM-vs-cuckoo translation power penalty:   {result['cam_penalty']:.1f}x",
             "full-activity breakdown (W):"]
    for component, watts in sorted(result["breakdown"].items(), key=lambda kv: -kv[1]):
        lines.append(f"  {component:<18} {watts:6.2f}")
    report("power_area", lines)

    assert abs(result["full"] - 4.78) < 0.05
    assert abs(result["avg"] - 0.92) < 0.25
    assert abs(result["tls_fraction"] - 0.218) < 0.01
    assert result["cam_penalty"] > 3
