"""Ablation: scratchpad sizing vs Force-Recycle frequency.

The paper sizes the scratchpad (and config memory) at 2048 pages because
that "effectively leads to nearly zero Force-Recycle method calls"
(Sec. IV-C).  We sweep the scratchpad size under a deferred-flush offload
stream and count explicit recycles: small scratchpads thrash, large ones
never force-recycle.
"""

from conftest import run_once

from repro.core.dsa.base import UlpKind
from repro.core.dsa.tls_dsa import TLSOffloadContext
from repro.core.offload_api import SessionConfig, SmartDIMMSession
from repro.core.smartdimm import SmartDIMMConfig
from repro.dram.commands import PAGE_SIZE

SCRATCHPAD_PAGES = [8, 16, 64, 256]
OFFLOADS = 48
BUFFER_SLOTS = 48  # fresh buffers: nothing self-recycles early by reuse


def _run(pages):
    session = SmartDIMMSession(
        SessionConfig(
            memory_bytes=64 * 1024 * 1024,
            llc_bytes=8 * 1024 * 1024,  # huge LLC: writebacks almost never occur
            rows=1 << 10,
            llc_ways=16,
            smartdimm=SmartDIMMConfig(scratchpad_pages=pages, config_slots=256),
        )
    )
    key, nonce = bytes(16), bytes(12)
    for i in range(OFFLOADS):
        sbuf = session.driver.alloc_pages(1)
        dbuf = session.driver.alloc_pages(1)
        session.write(sbuf, bytes([i & 0xFF]) * PAGE_SIZE)
        context = TLSOffloadContext(key=key, nonce=nonce, record_length=PAGE_SIZE - 16)
        session.compcpy.compcpy(
            dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT, flush_destination=False
        )
    return {
        "force_recycles": session.compcpy.stats.force_recycles,
        "force_recycled_lines": session.device.scratchpad.force_recycled_lines,
        "self_recycled_lines": session.device.scratchpad.self_recycled_lines,
    }


def test_scratchpad_sizing_ablation(benchmark, report):
    results = run_once(benchmark, lambda: {p: _run(p) for p in SCRATCHPAD_PAGES})
    lines = ["Ablation — scratchpad size vs Force-Recycle calls "
             f"({OFFLOADS} deferred-flush offloads, no LLC pressure)",
             f"{'pages':>6} {'force-recycle calls':>19} {'forced lines':>12} {'self lines':>10}"]
    for pages, result in results.items():
        lines.append(
            f"{pages:>6d} {result['force_recycles']:>19d} "
            f"{result['force_recycled_lines']:>12d} {result['self_recycled_lines']:>10d}"
        )
    report("ablation_scratchpad_size", lines)

    counts = [results[p]["force_recycles"] for p in SCRATCHPAD_PAGES]
    # Tiny scratchpads must force-recycle; the provisioned one never does.
    assert counts[0] > 0
    assert counts[-1] == 0
    # Monotone non-increasing with size.
    for left, right in zip(counts, counts[1:]):
        assert right <= left
