"""Fig. 10: scratchpad occupancy equilibrium under varying LLC provisioning.

Paper result (Sec. VII-A): scratchpad utilisation stabilises at an
equilibrium where LLC writebacks recycle pages as fast as new offloads
allocate them, and a *more contended* (smaller, CAT-limited) LLC reaches
equilibrium at a *lower* occupancy — writebacks come sooner.
"""

from conftest import run_once

from repro.core.dsa.base import UlpKind
from repro.core.dsa.tls_dsa import TLSOffloadContext
from repro.core.offload_api import SessionConfig, SmartDIMMSession
from repro.core.smartdimm import SmartDIMMConfig
from repro.dram.commands import PAGE_SIZE
from repro.sim.tracing import ScratchpadProbe

# Scaled-down analogue of the paper's {50MB, 30MB, 10MB} CAT sweep: the LLC
# way mask shrinks the effective cache while everything else stays fixed.
WAY_MASKS = {"16-way (full)": 0xFFFF, "8-way": 0x00FF, "2-way": 0x0003}
OFFLOADS = 240
BUFFER_SLOTS = 80  # rotating working set of source/destination buffers


def _run(way_mask):
    session = SmartDIMMSession(
        SessionConfig(
            memory_bytes=48 * 1024 * 1024,
            llc_bytes=1024 * 1024,
            rows=1 << 10,
            smartdimm=SmartDIMMConfig(scratchpad_pages=256, config_slots=256),
        )
    )
    session.llc.set_cpu_way_mask(way_mask)
    probe = ScratchpadProbe(session.device)
    key, nonce = bytes(16), bytes(12)
    buffers = [
        (session.driver.alloc_pages(1), session.driver.alloc_pages(1))
        for _ in range(BUFFER_SLOTS)
    ]
    force_recycles_before = session.compcpy.stats.force_recycles
    for i in range(OFFLOADS):
        sbuf, dbuf = buffers[i % BUFFER_SLOTS]
        if i >= BUFFER_SLOTS:
            # Reusing a buffer slot: reclaim any still-pending lines first
            # (kernel-side hygiene, as on free).
            session.driver.reclaim_page(dbuf // PAGE_SIZE)
        session.write(sbuf, bytes([i & 0xFF]) * PAGE_SIZE)
        context = TLSOffloadContext(key=key, nonce=nonce, record_length=PAGE_SIZE - 16)
        session.compcpy.compcpy(
            dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT,
            flush_destination=False,  # recycling is the LLC's job here
        )
        probe.sample(session.mc.cycle)
    return {
        "equilibrium_kb": probe.equilibrium_bytes(0.5) / 1024,
        "peak_kb": probe.peak_bytes() / 1024,
        "self_recycled": session.device.scratchpad.self_recycled_lines,
        "force_recycles": session.compcpy.stats.force_recycles - force_recycles_before,
        "samples": [s.used_bytes for s in probe.samples],
    }


def test_fig10_equilibrium_vs_llc_provisioning(benchmark, report):
    results = run_once(benchmark, lambda: {name: _run(mask) for name, mask in WAY_MASKS.items()})

    lines = ["Fig. 10 — scratchpad occupancy vs LLC provisioning (CAT)",
             f"{'LLC config':>15} {'equilibrium KB':>14} {'peak KB':>8} "
             f"{'self-recycled lines':>19} {'force-recycles':>14}"]
    for name, result in results.items():
        lines.append(
            f"{name:>15} {result['equilibrium_kb']:>14.1f} {result['peak_kb']:>8.1f} "
            f"{result['self_recycled']:>19d} {result['force_recycles']:>14d}"
        )
    # The occupancy curves themselves (offload index vs occupied bytes).
    from repro.analysis.plots import render_timeline

    lines.append("")
    lines.append(
        render_timeline(
            {name: result["samples"] for name, result in results.items()},
            width=72,
            height=14,
        ).rstrip()
    )
    report("fig10_scratchpad", lines)

    full = results["16-way (full)"]
    half = results["8-way"]
    tiny = results["2-way"]
    # Occupancy reaches an equilibrium (stops growing): the second half of
    # the run never exceeds the peak meaningfully.
    for result in results.values():
        tail = result["samples"][len(result["samples"]) // 2 :]
        assert max(tail) <= result["peak_kb"] * 1024 + PAGE_SIZE
    # Equilibrium occupancy shrinks as the LLC gets more contended.
    assert tiny["equilibrium_kb"] < half["equilibrium_kb"] <= full["equilibrium_kb"] * 1.05
    assert tiny["equilibrium_kb"] < full["equilibrium_kb"]
    # Self-recycling does the work; Force-Recycle stays rare (Sec. IV-B).
    assert tiny["self_recycled"] > 0
    assert tiny["force_recycles"] <= 2
