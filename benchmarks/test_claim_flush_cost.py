"""Sec. IV-A claim: flushing 4KB is ~50% faster when already in DRAM.

CompCpy flushes the source buffer before every offload; the paper argues
this is cheap exactly when offload engages (under contention the buffer has
already been evicted).  We measure the modelled flush cost of a 4KB buffer
in both states through the functional LLC.
"""

from conftest import run_once

from repro.cache.llc import LLC
from repro.cpu.flush import FlushDriver
from repro.dram.address import AddressMapping
from repro.dram.memory_controller import MemoryController, PlainDIMM
from repro.dram.physical_memory import PhysicalMemory


def _measure():
    mapping = AddressMapping(rows=1 << 8)
    mc = MemoryController(mapping, {0: PlainDIMM(PhysicalMemory(8 * 1024 * 1024))})
    llc = LLC(mc, size=64 * 1024, ways=8)
    driver = FlushDriver(llc)
    # Dirty-in-cache flush.
    for offset in range(0, 4096, 64):
        llc.store(offset, bytes([offset & 0xFF]) * 64)
    hot = driver.flush_range(0, 4096)
    # Already-in-DRAM flush of the same range.
    cold = driver.flush_range(0, 4096)
    return hot, cold


def test_flush_cost_asymmetry(benchmark, report):
    hot, cold = run_once(benchmark, _measure)
    speedup = 1.0 - cold.cycles / hot.cycles
    report(
        "claim_flush_cost",
        [
            "Sec. IV-A claim — flush(4KB) cost by residency",
            f"dirty-in-LLC:    {hot.cycles:8.0f} cycles ({hot.dirty_lines} writebacks)",
            f"already-in-DRAM: {cold.cycles:8.0f} cycles ({cold.dirty_lines} writebacks)",
            f"reduction:       {speedup:8.1%}  (paper: ~50%)",
        ],
    )
    assert hot.dirty_lines == 64
    assert cold.dirty_lines == 0
    assert 0.45 < speedup < 0.55
