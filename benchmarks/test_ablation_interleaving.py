"""Ablation: memory-channel interleaving vs ULP class (Sec. V-D).

Fine-grain (cacheline) interleaving scatters consecutive lines across
channels.  Size-preserving ULPs (AES-GCM) tolerate it — each SmartDIMM just
needs its own copy of the config — while stateful, non-size-preserving ULPs
(deflate) would see internally fragmented messages, so their buffers must
map to a single channel (single-channel mode, flex mode, or interleaving-
aware allocation).
"""

from conftest import run_once

from repro.dram.address import AddressMapping, InterleaveMode
from repro.dram.commands import CACHELINE_SIZE, PAGE_SIZE
from repro.ulp.gcm import AESGCM


def _fragmentation(interleave, channels=4):
    mapping = AddressMapping(
        channels=channels, rows=1 << 8, interleave=interleave
    )
    lines = list(mapping.lines_of_page(3))
    per_line_channels = [mapping.decode(address).channel for address in lines]
    switches = sum(1 for a, b in zip(per_line_channels, per_line_channels[1:]) if a != b)
    return per_line_channels, switches


def _gcm_tolerates_fragmentation():
    """Encrypt alternating line ranges as two 'channels' would see them and
    splice the results: byte-identical to the contiguous encryption."""
    gcm = AESGCM(bytes(16))
    iv = bytes(12)
    message = bytes((i * 11) & 0xFF for i in range(PAGE_SIZE))
    full, _ = gcm.encrypt(iv, message)
    spliced = bytearray(PAGE_SIZE)
    for channel in range(2):
        for line in range(channel, PAGE_SIZE // CACHELINE_SIZE, 2):
            start_block = line * (CACHELINE_SIZE // 16)
            stream = gcm.keystream(iv, CACHELINE_SIZE, start_block=start_block)
            lo = line * CACHELINE_SIZE
            spliced[lo : lo + CACHELINE_SIZE] = bytes(
                p ^ s for p, s in zip(message[lo : lo + CACHELINE_SIZE], stream)
            )
    return bytes(spliced) == full


def test_interleaving_ablation(benchmark, report):
    def _run():
        fine_channels, fine_switches = _fragmentation(InterleaveMode.CACHELINE)
        single_channels, single_switches = _fragmentation(InterleaveMode.SINGLE_CHANNEL)
        return {
            "fine_switches": fine_switches,
            "fine_channels_used": len(set(fine_channels)),
            "single_switches": single_switches,
            "single_channels_used": len(set(single_channels)),
            "gcm_ok": _gcm_tolerates_fragmentation(),
        }

    result = run_once(benchmark, _run)
    lines = ["Ablation — channel interleaving and ULP class (one 4KB page, 4 channels)",
             f"cacheline interleave: {result['fine_channels_used']} channels touched, "
             f"{result['fine_switches']} channel switches within the page",
             f"single-channel mode:  {result['single_channels_used']} channel touched, "
             f"{result['single_switches']} switches",
             f"AES-GCM splice across channels bit-exact: {result['gcm_ok']}",
             "deflate requires single-channel mapping (stateful over the stream)"]
    report("ablation_interleaving", lines)

    # Fine-grain interleaving fragments the page across all channels...
    assert result["fine_channels_used"] == 4
    assert result["fine_switches"] == 63
    # ...single-channel mode keeps it whole (deflate's requirement)...
    assert result["single_channels_used"] == 1
    # ...and the size-preserving ULP is indifferent (Sec. V-D).
    assert result["gcm_ok"]
