"""Ablation: baseline CompCpy vs the Sec. IV-E direct-offload model.

The paper's discussion argues that, given new DDR commands and a modified
memory controller, the offload "could eliminate cache pollution entirely"
and "conserve DDR data bandwidth".  We run the same TLS offloads through
both models on identical micro-systems and compare data-bus bytes, LLC
activity, and controller cycles for the transform itself.
"""

from conftest import run_once

from repro.core.dsa.base import UlpKind
from repro.core.dsa.tls_dsa import TLSOffloadContext
from repro.core.offload_api import SessionConfig, SmartDIMMSession
from repro.dram.commands import PAGE_SIZE
from repro.ulp.gcm import AESGCM

OFFLOADS = 8
KEY, NONCE = bytes(16), bytes(12)


def _prepare(session, i):
    sbuf = session.driver.alloc_pages(1)
    dbuf = session.driver.alloc_pages(1)
    payload = bytes(((i + 1) * j) & 0xFF for j in range(PAGE_SIZE - 16))
    session.write(sbuf, payload + bytes(16))
    session.llc.flush_range(sbuf, PAGE_SIZE)
    session.mc.fence()
    return sbuf, dbuf, payload


def _run(model):
    session = SmartDIMMSession(
        SessionConfig(memory_bytes=16 * 1024 * 1024, llc_bytes=512 * 1024)
    )
    bus_bytes = 0
    llc_accesses = 0
    cycles = 0
    for i in range(OFFLOADS):
        sbuf, dbuf, payload = _prepare(session, i)
        context = TLSOffloadContext(key=KEY, nonce=NONCE, record_length=len(payload))
        b0, a0, c0 = session.mc.stats.data_bytes, session.llc.stats.accesses, session.mc.cycle
        if model == "compcpy":
            session.compcpy.compcpy(dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT)
        else:
            session.direct_offload.offload(dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT)
            session.direct_offload.retire_all()
        bus_bytes += session.mc.stats.data_bytes - b0
        llc_accesses += session.llc.stats.accesses - a0
        cycles += session.mc.cycle - c0
        # Both models must produce the same bytes in DRAM.
        expected_ct, _ = AESGCM(KEY).encrypt(NONCE, payload)
        session.mc.fence()
        assert session.memory.read(dbuf, 256) == expected_ct[:256]
        session.driver.free_pages(sbuf)
        session.driver.free_pages(dbuf)
    return {
        "bus_bytes": bus_bytes / OFFLOADS,
        "llc_accesses": llc_accesses / OFFLOADS,
        "cycles": cycles / OFFLOADS,
    }


def test_direct_offload_vs_compcpy(benchmark, report):
    results = run_once(benchmark, lambda: {m: _run(m) for m in ("compcpy", "direct")})
    base, direct = results["compcpy"], results["direct"]
    lines = ["Ablation — CompCpy vs Sec. IV-E direct offload (per 4KB TLS offload)",
             f"{'model':>9} {'bus bytes':>10} {'LLC accesses':>12} {'MC cycles':>10}",
             f"{'compcpy':>9} {base['bus_bytes']:>10.0f} {base['llc_accesses']:>12.0f} {base['cycles']:>10.0f}",
             f"{'direct':>9} {direct['bus_bytes']:>10.0f} {direct['llc_accesses']:>12.0f} {direct['cycles']:>10.0f}",
             f"bus-data reduction: {1 - direct['bus_bytes'] / base['bus_bytes']:.1%}",
             f"cache-access reduction: {1 - direct['llc_accesses'] / max(base['llc_accesses'], 1):.1%}"]
    report("ablation_direct_offload", lines)

    # CompCpy moves the payload at least twice (loads + stores' writebacks)
    # plus registration; direct offload moves only the MMIO record.
    assert base["bus_bytes"] > 2 * PAGE_SIZE
    assert direct["bus_bytes"] == 64
    # Zero cache pollution for the direct model.
    assert direct["llc_accesses"] == 0
    assert base["llc_accesses"] >= 128  # 64 loads + 64 stores
    # Fewer cycles too: no data bursts, no fences, no flush-back.
    assert direct["cycles"] < base["cycles"]
