"""Benchmark-harness utilities.

Every benchmark regenerates one of the paper's tables/figures.  Besides the
pytest-benchmark timing, each writes its paper-style rows to
``benchmarks/results/<name>.txt`` (and stdout) so EXPERIMENTS.md can record
paper-vs-measured without re-running anything.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def report():
    """Returns a callable report(name, lines) persisting a results table."""

    def _report(name, lines):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = "\n".join(lines) + "\n"
        with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
            handle.write(text)
        print("\n" + text)

    return _report


def run_once(benchmark, fn):
    """Execute `fn` exactly once under the benchmark timer, returning its
    result (full-system sweeps are too heavy for repeated rounds)."""
    holder = {}

    def wrapper():
        holder["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return holder["result"]
