"""Ablation: TLS offload striped across 1-8 interleaved channels (Sec. V-D).

Size-preserving ULPs survive fine-grain channel interleaving if every
SmartDIMM holds its own configuration copy.  We sweep the channel count and
verify: perfect per-device load balance, one registration record per device
per page (the replicated-config cost), bit-exact output after the CPU-side
partial-tag combine, and clean deregistration everywhere.
"""

from conftest import run_once

from repro.core.multichannel import MultiChannelConfig, MultiChannelSession
from repro.dram.commands import LINES_PER_PAGE
from repro.ulp.gcm import AESGCM
from repro.workloads.corpus import CorpusKind, generate_corpus

KEY, NONCE = bytes(range(16)), bytes(12)
CHANNELS = [1, 2, 4, 8]
PAYLOAD = generate_corpus(CorpusKind.TEXT, 8000)


def _run(channels):
    session = MultiChannelSession(MultiChannelConfig(channels=channels))
    out = session.tls_encrypt(KEY, NONCE, PAYLOAD)
    ct, tag = AESGCM(KEY).encrypt(NONCE, PAYLOAD)
    assert out == ct + tag, channels
    shares = [d.stats.dsa_lines_processed for d in session.devices]
    mmio = sum(d.stats.mmio_writes for d in session.devices)
    leaks = sum(d.translation_table.live_entries for d in session.devices)
    return {"shares": shares, "mmio_writes": mmio, "leaks": leaks}


def test_multichannel_scaling(benchmark, report):
    results = run_once(benchmark, lambda: {c: _run(c) for c in CHANNELS})
    pages = (len(PAYLOAD) + 4095) // 4096
    lines = [
        "Ablation — TLS striped across interleaved channels "
        f"({len(PAYLOAD)}B record, {pages} pages)",
        f"{'channels':>8} {'per-device lines':>30} {'MMIO writes':>11}",
    ]
    for channels, result in results.items():
        lines.append(
            f"{channels:>8d} {str(result['shares']):>30} {result['mmio_writes']:>11d}"
        )
    lines.append("output bit-exact at every channel count; CPU combines the")
    lines.append("per-DIMM partial tags (constant work per record).")
    report("ablation_multichannel", lines)

    for channels, result in results.items():
        # Perfect balance: interleaving splits the lines evenly.
        expected_share = pages * LINES_PER_PAGE // channels
        assert all(share == expected_share for share in result["shares"])
        assert len(result["shares"]) == channels
        assert result["leaks"] == 0
    # Replicated configuration: registration traffic scales with channels.
    assert results[8]["mmio_writes"] > results[1]["mmio_writes"] * 4
