"""Ablation: CompCpy vs Compute DMA for device-sourced data (Sec. IV-E).

When the payload originates at an I/O device anyway (storage read, NIC
receive), Compute DMA lets the DSA tap the DMA write stream: the CPU never
loads or stores the payload, so its cycles and cache footprint drop to the
registration cost alone, at identical output bytes.
"""

from conftest import run_once

from repro.core.dsa.base import UlpKind
from repro.core.dsa.tls_dsa import TLSOffloadContext
from repro.core.offload_api import SessionConfig, SmartDIMMSession
from repro.dram.commands import PAGE_SIZE
from repro.ulp.gcm import AESGCM

KEY, NONCE = bytes(16), bytes(12)
OFFLOADS = 6


def _run(model):
    session = SmartDIMMSession(
        SessionConfig(memory_bytes=16 * 1024 * 1024, llc_bytes=512 * 1024)
    )
    llc_accesses = 0
    for i in range(OFFLOADS):
        payload = bytes(((i + 1) * j) & 0xFF for j in range(PAGE_SIZE - 16))
        sbuf = session.driver.alloc_pages(1)
        dbuf = session.driver.alloc_pages(1)
        context = TLSOffloadContext(key=KEY, nonce=NONCE, record_length=len(payload))
        accesses_before = session.llc.stats.accesses
        if model == "compcpy":
            # CompCpy path: the device first DMAs the payload in, then the
            # CPU copies it through the cache.
            session.compute_dma.dma_in(sbuf, payload + bytes(16))
            session.compcpy.compcpy(dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT)
        else:
            # Compute DMA: the transform happens during the DMA itself.
            session.compute_dma.register(dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT)
            session.compute_dma.dma_in(sbuf, payload + bytes(16))
        llc_accesses += session.llc.stats.accesses - accesses_before
        # Identical output either way.
        expected = AESGCM(KEY).encrypt(NONCE, payload)[0][:64]
        session.mc.cycle += 10_000
        assert session.mc.read_line(dbuf) == expected
        session.driver.free_pages(sbuf)
        session.driver.free_pages(dbuf)
    return llc_accesses / OFFLOADS


def test_compute_dma_removes_cpu_payload_touches(benchmark, report):
    results = run_once(benchmark, lambda: {m: _run(m) for m in ("compcpy", "compute_dma")})
    report(
        "ablation_compute_dma",
        [
            "Ablation — CompCpy vs Compute DMA for device-sourced payloads",
            f"LLC accesses per 4KB offload (CompCpy):     {results['compcpy']:.0f}",
            f"LLC accesses per 4KB offload (Compute DMA): {results['compute_dma']:.0f}",
            "Compute DMA removes every CPU payload touch; the CPU only",
            "registers the offload (Sec. IV-E's 'transform data while an",
            "I/O device is DMAing data to or from SmartDIMM').",
        ],
    )
    assert results["compute_dma"] == 0
    assert results["compcpy"] >= 128  # 64 loads + 64 stores minimum
