"""Profile the CompCpy micro-simulation: thin wrapper over repro.profiling.

Usage (repo root)::

    PYTHONPATH=src python benchmarks/perf/profile_micro.py [--size N]
        [--top N] [--sort KEY] [--reference]

Equivalent to ``python -m repro profile`` — kept next to the benchmarks so
the perf workflow (profile -> optimise -> datapath_bench -> gate) lives in
one directory.
"""

import sys

from repro.profiling import main

if __name__ == "__main__":
    sys.exit(main())
