"""Memory RAS / integrity benchmark wrapper: the BENCH_ras.json producer.

Thin adapter between :mod:`repro.ras.sweep` and the perf gate: the sweep
is a deterministic simulation (identical seed => identical payload), so
``bench_all`` runs it once and returns the payload
``check_regression.py`` gates:

* **property gate** (absolute, no baseline needed): the sweep's own
  integrity gate — zero undetected corruption anywhere verification is
  on (micro grid, per-lane SDC arms, full-coverage fleet storm), the
  verify-off contrast arm still demonstrating escapes, patrol-scrub
  overhead under its ceiling at the default rate, scrubbing reducing
  the at-risk line count, and the quarantine both tripping and
  re-admitting through probation;
* **baseline gate**: detection coverage and retired-row counts must not
  drop below the committed baseline (within tolerance), and scrub
  overhead must not grow above it.
"""

from __future__ import annotations

import os

from repro.ras import sweep

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_ras.json")

#: Baseline-compared summary metrics guarded as floors ("min"): detection
#: and retirement must not erode.
GUARDED_METRICS = ("grid_detection_coverage", "grid_retired_rows",
                   "fleet_detected_full_coverage")

#: Baseline-compared summary metrics guarded as ceilings ("max"): the
#: price of scrubbing must not creep up.
GUARDED_CEILINGS = ("scrub_overhead_default",)


def bench_all(repeats: int = 1) -> dict:
    """Run the full ras sweep (deterministic; `repeats` ignored)."""
    return sweep.run_ras(seed=11)


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """RAS regressions as human-readable strings (empty = pass)."""
    regressions = ["ras: " + failure for failure in sweep.gate_failures(fresh)]
    summary = fresh["summary"]
    base_summary = baseline.get("summary", {})
    for metric in GUARDED_METRICS:
        base_value = base_summary.get(metric)
        if base_value is None:
            continue  # baseline predates this metric
        fresh_value = summary.get(metric)
        if fresh_value is None:
            regressions.append("ras: %s missing from fresh run" % metric)
            continue
        floor = (1.0 - tolerance) * base_value
        if fresh_value < floor:
            regressions.append(
                "ras: %s %.3f < floor %.3f (baseline %.3f, -%.0f%%)"
                % (metric, fresh_value, floor, base_value,
                   100.0 * (1.0 - fresh_value / base_value)))
    for metric in GUARDED_CEILINGS:
        base_value = base_summary.get(metric)
        if base_value is None:
            continue
        fresh_value = summary.get(metric)
        if fresh_value is None:
            regressions.append("ras: %s missing from fresh run" % metric)
            continue
        ceiling = (1.0 + tolerance) * base_value
        if fresh_value > ceiling:
            regressions.append(
                "ras: %s %.4f > ceiling %.4f (baseline %.4f, +%.0f%%)"
                % (metric, fresh_value, ceiling, base_value,
                   100.0 * (fresh_value / base_value - 1.0)))
    return regressions


def write_results(results: dict, path: str = RESULTS_PATH) -> str:
    """Persist `results` exactly as the CLI does; returns the path."""
    with open(path, "w") as handle:
        handle.write(sweep.to_json(results))
    return path


def main() -> None:
    """CLI entry: run the sweep, print the summary, write the baseline."""
    results = bench_all()
    print(sweep.render(results))
    print("wrote", write_results(results))


if __name__ == "__main__":
    main()
