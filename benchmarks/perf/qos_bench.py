"""Multi-tenant QoS benchmark wrapper: the BENCH_qos.json producer.

Thin adapter between :mod:`repro.qos.sweep` and the perf gate: the sweep
is a deterministic simulation (identical seed => identical payload), so
``bench_all`` runs it once and returns the payload
``check_regression.py`` gates:

* **property gate** (absolute, no baseline needed): the sweep's own
  fairness gate — victims keep >= 85% of isolated goodput under attack
  and under attack+chaos, the aggressor is capped near its fair share,
  the latency class's p99 holds its deadline under 2x aggregate surge,
  and the retry-isolation micro shows zero cross-tenant budget
  exhaustion (victim ``denied_parent == 0``);
* **contrast gate** (absolute): the FIFO arm must still demonstrate the
  noisy-neighbor damage the DRR arm prevents — if the victim does fine
  without QoS, the sweep is no longer exercising interference;
* **baseline gate**: capacity and the victims' attack goodput must stay
  within tolerance of the committed baseline.
"""

from __future__ import annotations

import os

from repro.qos import sweep

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_qos.json")

#: Ceiling on the FIFO arm's victim goodput ratio — the interference the
#: sweep must demonstrate (well below the DRR arm's 85% floor).
FIFO_DAMAGE_CEILING = 0.75

#: Baseline-compared summary metrics (all "min"-guarded floors).
GUARDED_METRICS = ("capacity_rps", "victim_goodput_ratio",
                   "victim_goodput_ratio_chaos")


def bench_all(repeats: int = 1) -> dict:
    """Run the full qos sweep (deterministic; `repeats` ignored)."""
    return sweep.run_qos(seed=11)


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """QoS regressions as human-readable strings (empty = pass)."""
    regressions = ["qos: " + failure for failure in sweep.gate_failures(fresh)]
    summary = fresh["fairness"]["summary"]
    fifo_ratio = summary["victim_goodput_ratio_fifo"]
    if fifo_ratio > FIFO_DAMAGE_CEILING:
        regressions.append(
            "qos: FIFO-arm victim keeps %.0f%% of isolated goodput "
            "(> %.0f%%) — the sweep no longer demonstrates interference"
            % (100 * fifo_ratio, 100 * FIFO_DAMAGE_CEILING))
    base_summary = baseline.get("fairness", {}).get("summary", {})
    for metric in GUARDED_METRICS:
        base_value = base_summary.get(metric)
        if base_value is None:
            continue  # baseline predates this metric
        fresh_value = summary.get(metric)
        if fresh_value is None:
            regressions.append("qos: %s missing from fresh run" % metric)
            continue
        floor = (1.0 - tolerance) * base_value
        if fresh_value < floor:
            regressions.append(
                "qos: %s %.3f < floor %.3f (baseline %.3f, -%.0f%%)"
                % (metric, fresh_value, floor, base_value,
                   100.0 * (1.0 - fresh_value / base_value)))
    return regressions


def write_results(results: dict, path: str = RESULTS_PATH) -> str:
    """Persist `results` exactly as the CLI does; returns the path."""
    with open(path, "w") as handle:
        handle.write(sweep.to_json(results))
    return path


def main() -> None:
    """CLI entry: run the sweep, print the summary, write the baseline."""
    results = bench_all()
    print(sweep.render(results))
    print("wrote", write_results(results))


if __name__ == "__main__":
    main()
