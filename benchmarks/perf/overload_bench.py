"""Overload-control benchmark wrapper: the BENCH_overload.json producer.

Thin adapter between :mod:`repro.overload.sweep` and the perf gate: the
sweep itself is a deterministic simulation (identical seed => identical
payload), so unlike the wall-clock benches there is nothing to repeat —
``bench_all`` runs the sweep once and returns the payload
``check_regression.py`` gates:

* **property gate** (absolute, no baseline needed): with the control
  stack on, goodput at 2x offered load must be >= 70% of peak, and the
  uncontrolled curve must actually exhibit the collapse the controlled
  one prevents (otherwise the sweep is not exercising overload at all);
* **baseline gate**: capacity and controlled goodput must stay within
  tolerance of the committed baseline.
"""

from __future__ import annotations

import os

from repro.overload import sweep

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_overload.json")

#: Acceptance floor: controlled goodput at 2x offered load vs peak.
GOODPUT_FLOOR = 0.70

#: Ceiling on the *uncontrolled* 2x/peak ratio — the collapse the sweep
#: must demonstrate (well below the controlled floor).
COLLAPSE_CEILING = 0.35

#: Baseline-compared summary metrics (all "min"-guarded floors).
GUARDED_METRICS = ("capacity_rps", "peak_goodput_shed_rps",
                   "goodput_2x_shed_rps")


def bench_all(repeats: int = 1) -> dict:
    """Run the full overload sweep (deterministic; `repeats` ignored)."""
    return sweep.run_overload(seed=11)


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Overload regressions as human-readable strings (empty = pass)."""
    regressions = []
    summary = fresh["sweep"]["summary"]
    shed_ratio = summary["shed_2x_over_peak"] or 0.0
    noshed_ratio = summary["noshed_2x_over_peak"] or 0.0
    if shed_ratio < GOODPUT_FLOOR:
        regressions.append(
            "overload: controlled goodput at 2x is %.0f%% of peak "
            "(floor %.0f%%) — graceful degradation broken"
            % (100 * shed_ratio, 100 * GOODPUT_FLOOR))
    if noshed_ratio > COLLAPSE_CEILING:
        regressions.append(
            "overload: uncontrolled goodput at 2x is %.0f%% of peak "
            "(> %.0f%%) — the sweep no longer demonstrates collapse"
            % (100 * noshed_ratio, 100 * COLLAPSE_CEILING))
    base_summary = baseline.get("sweep", {}).get("summary", {})
    for metric in GUARDED_METRICS:
        base_value = base_summary.get(metric)
        if base_value is None:
            continue  # baseline predates this metric
        fresh_value = summary.get(metric)
        if fresh_value is None:
            regressions.append("overload: %s missing from fresh run" % metric)
            continue
        floor = (1.0 - tolerance) * base_value
        if fresh_value < floor:
            regressions.append(
                "overload: %s %.0f < floor %.0f (baseline %.0f, -%.0f%%)"
                % (metric, fresh_value, floor, base_value,
                   100.0 * (1.0 - fresh_value / base_value)))
    return regressions


def write_results(results: dict, path: str = RESULTS_PATH) -> str:
    """Persist `results` exactly as the CLI does; returns the path."""
    with open(path, "w") as handle:
        handle.write(sweep.to_json(results))
    return path


def main() -> None:
    """CLI entry: run the sweep, print the summary, write the baseline."""
    results = bench_all()
    print(sweep.render(results))
    print("wrote", write_results(results))


if __name__ == "__main__":
    main()
