"""Perf-marked benchmark: regenerate BENCH_datapath.json and gate speedups.

Excluded from tier-1 (``testpaths = ["tests"]`` plus the ``perf`` marker);
run explicitly with::

    PYTHONPATH=src python -m pytest -m perf benchmarks/perf -q

The assertions are deliberately loose (2x under the recorded ~20x) so the
gate holds on slow shared runners; ``check_regression.py`` does the tight
comparison against the committed baseline.
"""

import pytest

import datapath_bench

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def results():
    """One full sweep shared by every assertion in this module."""
    return datapath_bench.bench_all()


def test_aes_gcm_speedup(results):
    """The tentpole claim: >=10x full-record encrypt at 64 KB."""
    entry = results["aes_gcm_encrypt"]["65536"]
    assert entry["speedup"] >= 10.0, "64 KB AES-GCM speedup %.1fx < 10x" % entry["speedup"]
    assert results["aes_gcm_encrypt"]["16384"]["speedup"] >= 5.0
    assert results["aes_gcm_encrypt"]["4096"]["speedup"] >= 2.5


def test_ghash_speedup(results):
    """Lane-parallel GHASH beats the nibble-serial reference at 64 KB."""
    assert results["ghash"]["65536"]["speedup"] >= 4.0


def test_deflate_not_slower(results):
    """The chunked-compare matcher never loses to the seed inner loop."""
    for entry in results["deflate"].values():
        assert entry["speedup"] >= 0.9


def test_write_baseline(results, tmp_path):
    """The sweep serialises cleanly and lands at the repo root on demand."""
    path = datapath_bench.write_results(results, str(tmp_path / "BENCH_datapath.json"))
    import json

    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded["aes_gcm_encrypt"]["65536"]["speedup"] == results["aes_gcm_encrypt"]["65536"]["speedup"]
