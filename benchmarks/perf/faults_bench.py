"""Fault-injection overhead benchmarks: the hooks must be ~free when off.

Every injection site in the stack guards with ``plan is not None`` so that
sessions without a fault plan pay only a pointer check per decision point.
This module prices that check honestly:

* ``tls_disabled`` — baseline: a TLS offload through a session with no
  fault plan (the default everyone runs).
* ``tls_chaos_inert`` — the same offload with a plan attached whose specs
  all have probability 0: injection decisions, device checksum snapshot,
  read-back verification, and the resilience guard all active but never
  firing.  This is what *chaos mode* costs; it is allowed to be slower.
* ``disabled_hook_overhead`` — the gated number: hook executions per op
  (counted with an instrumented plan) times the measured cost of one
  guard branch, as a fraction of the disabled op's wall time.  This is an
  upper bound on what the hooks cost a plan-less session, and it is what
  ``check_regression.py`` asserts stays under 2%.

Counting + branch-timing is used instead of differencing two wall-clock
runs because the difference between ~16 ms ops is dominated by timer noise
at the 2% scale; the product of two low-variance measurements is not.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.offload_api import SessionConfig, SmartDIMMSession
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec

KEY = bytes(range(16))
NONCE = bytes(range(12))
PAYLOAD = (b"fault hooks must be free when nobody is injecting " * 164)[:8192]

ALL_SITES = (
    FaultSite.DSA_WEDGE,
    FaultSite.DSA_ALERT_STORM,
    FaultSite.TT_INSERT,
    FaultSite.SCRATCHPAD_EXHAUST,
    FaultSite.DRAM_CORRUPT,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_faults.json")


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


class _CountingPlan(FaultPlan):
    """A never-firing plan that counts how often sites consult it."""

    def __init__(self):
        super().__init__(seed=0)
        self.calls = 0

    def fires(self, site: str) -> bool:
        """Count the decision; never inject."""
        self.calls += 1
        return False


def _inert_plan() -> FaultPlan:
    return FaultPlan(seed=1, specs=[
        FaultSpec(site, probability=0.0) for site in ALL_SITES
    ])


def bench_tls(repeats: int = 5) -> dict:
    """Disabled vs inert-chaos TLS offload wall times."""
    disabled = SmartDIMMSession()
    t_disabled = _best_of(
        lambda: disabled.tls_encrypt(KEY, NONCE, PAYLOAD), repeats)
    chaos = SmartDIMMSession(SessionConfig(fault_plan=_inert_plan()))
    t_chaos = _best_of(lambda: chaos.tls_encrypt(KEY, NONCE, PAYLOAD), repeats)
    return {
        "tls_disabled": {
            "size_bytes": len(PAYLOAD),
            "wall_s": t_disabled,
            "mbps": len(PAYLOAD) / t_disabled / 1e6,
        },
        "tls_chaos_inert": {
            "size_bytes": len(PAYLOAD),
            "wall_s": t_chaos,
            "mbps": len(PAYLOAD) / t_chaos / 1e6,
            "overhead_vs_disabled": t_chaos / t_disabled - 1.0,
        },
    }


def bench_disabled_overhead(repeats: int = 5) -> dict:
    """Upper-bound the per-op cost of the disabled (`plan is None`) guards.

    ``hooks_per_op`` counts every injection decision an op makes when a
    plan *is* attached — at least as many guard branches as the plan-less
    path executes.  ``branch_ns`` times the guard pattern itself.  Their
    product over the disabled op time is the gated overhead fraction.
    """
    counting = _CountingPlan()
    session = SmartDIMMSession(SessionConfig(fault_plan=counting))
    session.tls_encrypt(KEY, NONCE, PAYLOAD)
    counting.calls = 0
    session.tls_encrypt(KEY, NONCE, PAYLOAD)
    hooks_per_op = counting.calls

    plan = None
    iterations = 1_000_000

    def guard_loop():
        hits = 0
        for _ in range(iterations):
            if plan is not None:
                hits += 1
        return hits

    branch_s = _best_of(guard_loop, repeats) / iterations
    disabled = SmartDIMMSession()
    op_s = _best_of(lambda: disabled.tls_encrypt(KEY, NONCE, PAYLOAD), repeats)
    return {
        "hooks_per_op": hooks_per_op,
        "branch_ns": branch_s * 1e9,
        "disabled_op_s": op_s,
        "overhead_fraction": hooks_per_op * branch_s / op_s,
    }


def bench_all(repeats: int = 5) -> dict:
    """Run every section; returns the BENCH_faults.json payload."""
    results = bench_tls(repeats)
    results["disabled_hook_overhead"] = bench_disabled_overhead(repeats)
    return results


def write_results(results: dict, path: str = RESULTS_PATH) -> str:
    """Persist `results` as pretty-printed JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main() -> None:
    """CLI entry: run the sweep, print the summary, write the baseline."""
    results = bench_all()
    overhead = results["disabled_hook_overhead"]
    print("tls disabled     %8.3f ms" % (1e3 * results["tls_disabled"]["wall_s"]))
    print("tls chaos-inert  %8.3f ms  (+%.1f%%)"
          % (1e3 * results["tls_chaos_inert"]["wall_s"],
             100 * results["tls_chaos_inert"]["overhead_vs_disabled"]))
    print("disabled hooks: %d guards/op x %.1f ns = %.4f%% of one op"
          % (overhead["hooks_per_op"], overhead["branch_ns"],
             100 * overhead["overhead_fraction"]))
    print("wrote", write_results(results))


if __name__ == "__main__":
    main()
