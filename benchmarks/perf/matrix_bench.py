"""Machine-relative speedup bench for the experiment-matrix run-pool.

Runs the full ``--quick`` matrix twice on this machine — serially
(``jobs=1``, inline execution, zero pool overhead) and through the
``multiprocessing`` pool — with the result cache disabled, and reports
the wall-clock ratio plus whether the two payloads are byte-identical.
No baseline is committed: both walls come from the same machine moments
apart, so the ratio is what the ``matrix3x`` gate row in
``check_regression.py`` guards (parallel must stay >= 3x serial on a
>= 4-core box, and parallel output must equal serial output exactly).

On boxes with fewer than four cores the bench returns a ``skipped``
marker instead of timing anything — a 1- or 2-core machine cannot
demonstrate a 3x fan-out and the gate auto-passes with a note.

Run standalone::

    PYTHONPATH=src python benchmarks/perf/matrix_bench.py
"""

from __future__ import annotations

import json
import multiprocessing
import time

#: Cores below which the speedup measurement is meaningless.
MIN_CORES = 4


def bench_matrix3x(jobs: int = None, quick: bool = True) -> dict:
    """Serial vs pooled wall clock for the quick matrix, cache off."""
    cpus = multiprocessing.cpu_count()
    if cpus < MIN_CORES:
        return {"skipped": "only %d core%s (need >= %d for a meaningful "
                           "speedup)" % (cpus, "s" if cpus != 1 else "",
                                         MIN_CORES),
                "cpu_count": cpus}
    from repro.exp import build_matrix, matrix_to_json, run_matrix

    jobs = jobs or min(cpus, 8)
    specs = build_matrix(quick=quick)

    start = time.perf_counter()
    serial = run_matrix(specs, jobs=1)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_matrix(specs, jobs=jobs)
    parallel_wall = time.perf_counter() - start

    return {
        "cpu_count": cpus,
        "jobs": jobs,
        "points": len(specs),
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
        "identical": matrix_to_json(serial) == matrix_to_json(parallel),
    }


def compare_matrix3x(fresh: dict, floor: float) -> list:
    """The matrix3x verdict: speedup floor + byte-identical payloads."""
    if "skipped" in fresh:
        return []
    regressions = []
    if not fresh["identical"]:
        regressions.append(
            "matrix3x: parallel matrix payload differs from serial at "
            "jobs=%d (worker determinism broken)" % fresh["jobs"])
    if fresh["speedup"] < floor:
        regressions.append(
            "matrix3x: quick matrix %.2fx at jobs=%d < required %.1fx "
            "(serial %.2fs, parallel %.2fs on %d cores)"
            % (fresh["speedup"], fresh["jobs"], floor,
               fresh["serial_wall_s"], fresh["parallel_wall_s"],
               fresh["cpu_count"]))
    return regressions


if __name__ == "__main__":
    print(json.dumps(bench_matrix3x(), indent=2, sort_keys=True))
