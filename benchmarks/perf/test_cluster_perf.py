"""Perf-marked benchmark: regenerate BENCH_cluster.json and sanity-gate it.

Excluded from tier-1 (``testpaths = ["tests"]`` plus the ``perf`` marker);
run explicitly with::

    PYTHONPATH=src python -m pytest -m perf benchmarks/perf -q

The floors are deliberately loose — a pure-Python DES on a busy shared
runner — while ``check_regression.py`` does the tight same-machine
comparison against the committed baseline.
"""

import json

import pytest

import cluster_bench

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def results():
    """One full sweep shared by every assertion in this module."""
    return cluster_bench.bench_all()


def test_kernel_event_throughput(results):
    """The event loop must stay fast enough for rack-scale runs."""
    assert results["kernel_timeout"]["events_per_sec"] > 50_000
    assert results["kernel_process"]["events_per_sec"] > 30_000


def test_scenarios_complete_and_count_events(results):
    for section in ("scenario_closed_tls", "scenario_open_spill"):
        entry = results[section]
        assert entry["completed"] > 0
        assert entry["events"] > entry["completed"]  # multiple events/request
        assert entry["wall_s"] < 60.0


def test_scenario_event_counts_are_deterministic(results):
    """The DES is seeded: a re-run must process exactly the same events."""
    fresh = cluster_bench.bench_scenario_closed_tls()
    assert fresh["events"] == results["scenario_closed_tls"]["events"]
    assert fresh["completed"] == results["scenario_closed_tls"]["completed"]


def test_fleet_vector_speedup(results):
    """The vector tier must beat the DES kernel decisively on the fleet
    spill scenario.  The floor here is deliberately loose (shared runner);
    check_regression.py's fleetvec gate holds the tight 20x same-machine
    line."""
    entry = results["fleet_vector"]
    assert entry["speedup_vs_des"] >= 10.0
    assert entry["vector_completed"] > 0
    assert entry["event_spilled"] > 0  # the scenario must exercise spilling


def test_vector_crosscheck_agrees(results):
    """The recorded fidelity verdict must hold when the bench regenerates."""
    entry = results["vector_crosscheck"]
    assert entry["passed"]
    assert entry["latency_bucket_l1_frac"] <= entry["latency_bucket_tol"]


def test_write_baseline(results, tmp_path):
    """The sweep serialises cleanly where check_regression expects it."""
    path = cluster_bench.write_results(results, str(tmp_path / "BENCH_cluster.json"))
    with open(path) as handle:
        decoded = json.load(handle)
    assert set(decoded) >= {"kernel_timeout", "kernel_process",
                            "scenario_closed_tls", "scenario_open_spill",
                            "fleet_vector", "vector_crosscheck"}
    for entry in decoded.values():
        if "wall_s" in entry:  # vector_crosscheck records a verdict, not a time
            assert entry["wall_s"] > 0
