"""Datapath micro-benchmarks: reference ("before") vs fast path ("after").

The fast path introduced for the functional datapath — batched CTR
keystream, lane-parallel byte-windowed GHASH, wide-word XOR, and the
session-keyed context cache — must be *bit-identical* to the from-scratch
reference the seed shipped.  This module times both sides on the paper's
message sizes (4/16/64 KB, Fig. 11) and emits ``BENCH_datapath.json`` at the
repo root so regressions are caught by ``check_regression.py``.

Sections:

* ``aes_gcm_encrypt`` — full encrypt (keystream + XOR + tag) per record.
* ``ghash`` — authentication only, the serial dependency the paper's
  stride-4 H-power hardware attacks.
* ``deflate`` — LZ77 tokenisation with the seed's byte-at-a-time matcher
  vs the chunked-compare matcher (identical token streams).
* ``compcpy_e2e`` — a whole TLS record pushed through the SmartDIMM
  CompCpy pipeline (cache + DRAM micro-simulation included), current path
  only: the seed path at 64 KB takes minutes, so the committed baseline is
  the regression reference instead.

Timing uses best-of-N wall time: the figures gate a >20% regression, not a
rigorous statistical claim.
"""

from __future__ import annotations

import json
import os
import time

from repro.ulp.ctx_cache import cached_aesgcm
from repro.ulp.deflate import deflate_compress
from repro.ulp.lz77 import HashChainMatcher, MIN_MATCH

SIZES = (4096, 16384, 65536)

KEY = bytes(range(16))
NONCE = bytes(range(12))
AAD = b"\x17\x03\x03\x40\x11"

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_datapath.json")


def _corpus(size: int) -> bytes:
    """Deterministic mixed-entropy payload (compressible like the paper's
    HTML corpus, non-trivial for crypto)."""
    chunk = (
        b"<html><body>SmartDIMM offloads upper layer protocols next to "
        b"memory; records span %d bytes of response payload.</body></html>"
    )
    out = bytearray()
    index = 0
    while len(out) < size:
        out += chunk % index
        index += 1
    return bytes(out[:size])


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of `repeats` runs of `fn` (first run included so
    one-time table builds are visible in a cold-start column if needed)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _entry(size: int, before_s: float, after_s: float) -> dict:
    return {
        "size_bytes": size,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s if after_s else float("inf"),
        "before_mbps": size / before_s / 1e6 if before_s else float("inf"),
        "after_mbps": size / after_s / 1e6 if after_s else float("inf"),
    }


class _SeedMatcher(HashChainMatcher):
    """The seed's byte-at-a-time chain walk (no quick reject, no slabs).

    Token streams are identical to :class:`HashChainMatcher`; only the inner
    loop differs, so timing this subclass against the parent isolates the
    matcher optimisation.
    """

    def _longest_match(self, data, pos, head, prev):
        if pos + MIN_MATCH > len(data):
            return None
        from repro.ulp.lz77 import MAX_MATCH, Match

        limit = max(0, pos - self.window_size)
        candidate = head.get(self._hash(data, pos), -1)
        best_length = MIN_MATCH - 1
        best_distance = 0
        chain_budget = self.max_chain
        max_length = min(MAX_MATCH, len(data) - pos)
        while candidate >= limit and chain_budget > 0:
            chain_budget -= 1
            length = 0
            while length < max_length and data[candidate + length] == data[pos + length]:
                length += 1
            if length > best_length:
                best_length = length
                best_distance = pos - candidate
                if length >= max_length:
                    break
            candidate = prev.get(candidate, -1)
        if best_length >= MIN_MATCH:
            return Match(length=best_length, distance=best_distance)
        return None


def bench_aes_gcm(sizes=SIZES, repeats=3) -> dict:
    """Full-record AES-GCM encrypt: reference vs fast path, checked equal."""
    gcm = cached_aesgcm(KEY)
    results = {}
    for size in sizes:
        plaintext = _corpus(size)
        reference = gcm.encrypt_reference(NONCE, plaintext, AAD)
        fast = gcm.encrypt(NONCE, plaintext, AAD)
        if reference != fast:
            raise AssertionError("fast path diverged from reference at %d bytes" % size)
        before = _best_of(lambda: gcm.encrypt_reference(NONCE, plaintext, AAD), repeats)
        after = _best_of(lambda: gcm.encrypt(NONCE, plaintext, AAD), repeats)
        results[str(size)] = _entry(size, before, after)
    return results


def bench_ghash(sizes=SIZES, repeats=3) -> dict:
    """GHASH over the ciphertext: nibble-serial reference vs lane-parallel."""
    from repro.ulp.gcm import ghash_int

    gcm = cached_aesgcm(KEY)
    results = {}
    for size in sizes:
        data = _corpus(size)
        if ghash_int(gcm._reference_mul(), data) != gcm._ghash_bulk(data):
            raise AssertionError("GHASH fast path diverged at %d bytes" % size)
        before = _best_of(lambda: ghash_int(gcm._reference_mul(), data), repeats)
        after = _best_of(lambda: gcm._ghash_bulk(data), repeats)
        results[str(size)] = _entry(size, before, after)
    return results


def bench_deflate(sizes=SIZES, repeats=3) -> dict:
    """LZ77 tokenisation (level-6 parameters) seed matcher vs current."""
    results = {}
    for size in sizes:
        data = _corpus(size)
        seed = _SeedMatcher(max_chain=128, lazy=True)
        current = HashChainMatcher(max_chain=128, lazy=True)
        if seed.tokenize(data) != current.tokenize(data):
            raise AssertionError("matcher token stream diverged at %d bytes" % size)
        before = _best_of(lambda: seed.tokenize(data), repeats)
        after = _best_of(lambda: current.tokenize(data), repeats)
        entry = _entry(size, before, after)
        # End-to-end DEFLATE throughput on the current path for context.
        stream_time = _best_of(lambda: deflate_compress(data, level=6), repeats)
        entry["deflate_after_mbps"] = size / stream_time / 1e6
        results[str(size)] = entry
    return results


#: compcpy_e2e throughput recorded before the batched line-op fast path
#: (per-line LLC/controller/DIMM simulation, per-block GHASH folding).
#: These figures were measured on the same class of machine as the
#: committed baselines; ``speedup_vs_seed`` below is gated machine-relative
#: against them (the batched fast path must stay >= 5x at 64 KB).
SEED_COMPCPY_MBPS = {
    "4096": 0.3595809266881396,
    "16384": 0.5459709797631729,
    "65536": 0.6118922571059496,
}


def bench_compcpy(sizes=SIZES, repeats=2) -> dict:
    """A whole TLS record through the CompCpy pipeline (current path)."""
    from repro.core.offload_api import SmartDIMMSession

    results = {}
    for size in sizes:
        payload = _corpus(size)
        session = SmartDIMMSession()
        out = session.tls_encrypt(KEY, NONCE, payload, AAD)
        expected = cached_aesgcm(KEY).encrypt(NONCE, payload, AAD)
        if out != expected[0] + expected[1]:
            raise AssertionError("CompCpy TLS output diverged at %d bytes" % size)
        elapsed = _best_of(lambda: session.tls_encrypt(KEY, NONCE, payload, AAD), repeats)
        entry = {
            "size_bytes": size,
            "after_s": elapsed,
            "after_mbps": size / elapsed / 1e6,
        }
        seed_mbps = SEED_COMPCPY_MBPS.get(str(size))
        if seed_mbps:
            entry["seed_mbps"] = seed_mbps
            entry["speedup_vs_seed"] = entry["after_mbps"] / seed_mbps
        results[str(size)] = entry
    return results


def bench_slots_alloc(n=100_000, repeats=3) -> dict:
    """Allocation cost of the hot micro-simulation records.

    ``Command``/``TraceEntry``/``CasResult``/``DramCoordinate`` are created
    on every simulated DRAM access, so their ``__slots__`` layout shows up
    directly in datapath wall time; this section records ns/object for the
    bench report (informational — not a gated section).
    """
    from repro.dram.address import DramCoordinate
    from repro.dram.commands import Command, CommandType
    from repro.dram.memory_controller import CasResult, TraceEntry

    makers = {
        "Command": lambda: [
            Command(kind=CommandType.RDCAS, cycle=i, address=i << 6) for i in range(n)
        ],
        "TraceEntry": lambda: [TraceEntry(i, "rdCAS", i << 6) for i in range(n)],
        "CasResult": lambda: [CasResult(data=b"") for _ in range(n)],
        "DramCoordinate": lambda: [DramCoordinate(0, 0, 0, i, 0) for i in range(n)],
    }
    results = {}
    for name, maker in makers.items():
        elapsed = _best_of(maker, repeats)
        results[name] = {"objects": n, "ns_per_object": 1e9 * elapsed / n}
    return results


def bench_all(sizes=SIZES, repeats=3) -> dict:
    """Run every section; returns the BENCH_datapath.json payload."""
    return {
        "sizes_bytes": list(sizes),
        "aes_gcm_encrypt": bench_aes_gcm(sizes, repeats),
        "ghash": bench_ghash(sizes, repeats),
        "deflate": bench_deflate(sizes, repeats),
        "compcpy_e2e": bench_compcpy(sizes, max(1, repeats - 1)),
        "slots_alloc": bench_slots_alloc(repeats=repeats),
    }


def write_results(results: dict, path: str = RESULTS_PATH) -> str:
    """Persist `results` as pretty-printed JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main() -> None:
    """CLI entry: run the full sweep and write BENCH_datapath.json."""
    results = bench_all()
    path = write_results(results)
    for section in ("aes_gcm_encrypt", "ghash", "deflate"):
        for size, entry in sorted(results[section].items(), key=lambda kv: int(kv[0])):
            print(
                "%-16s %6d B  before %8.3f ms  after %8.3f ms  %6.1fx"
                % (
                    section,
                    entry["size_bytes"],
                    1e3 * entry["before_s"],
                    1e3 * entry["after_s"],
                    entry["speedup"],
                )
            )
    for size, entry in sorted(results["compcpy_e2e"].items(), key=lambda kv: int(kv[0])):
        print(
            "%-16s %6d B  after %8.3f ms  %8.2f MB/s  %5.1fx vs seed"
            % (
                "compcpy_e2e",
                entry["size_bytes"],
                1e3 * entry["after_s"],
                entry["after_mbps"],
                entry.get("speedup_vs_seed", 0.0),
            )
        )
    for name, entry in sorted(results.get("slots_alloc", {}).items()):
        print("%-16s %6d objs  %8.1f ns/object" % (name, entry["objects"], entry["ns_per_object"]))
    print("wrote", path)


if __name__ == "__main__":
    main()
