"""Perf-regression gate for the datapath fast path and the cluster DES.

Re-runs the micro-benchmarks and compares fresh results against the
committed baselines at the repo root:

* ``BENCH_datapath.json`` — datapath throughput (``datapath_bench``): the
  ``after``-path MB/s per (section, size) must not drop more than
  ``--tolerance`` (default 20%).
* ``BENCH_cluster.json`` — cluster-simulator speed (``cluster_bench``):
  kernel events/sec must not drop, and end-to-end scenario wall time must
  not grow, by more than the same tolerance.
* fault hooks (``faults_bench``, no baseline needed): the measured cost of
  the ``plan is not None`` guards on a plan-less session must stay under
  ``--faults-tolerance`` (default 2%) of one offload — the disabled fault
  path is required to be essentially free.

Any regression fails the gate with exit code 1 — use it in CI or before
merging changes to either layer::

    PYTHONPATH=src python benchmarks/perf/check_regression.py

Absolute wall times vary across machines; throughput *ratios* between a
fresh run and a baseline recorded on the same machine are what the gate is
for.  ``--update`` rewrites both baselines from the fresh run.
"""

from __future__ import annotations

import argparse
import json
import sys

import cluster_bench
import datapath_bench
import faults_bench

#: Datapath sections whose `after_mbps` is guarded per record size.
GUARDED_SECTIONS = ("aes_gcm_encrypt", "ghash", "deflate", "compcpy_e2e")

#: Cluster sections -> (metric, direction); "min" guards a floor
#: (throughput must not drop), "max" a ceiling (wall time must not grow).
CLUSTER_GUARDS = {
    "kernel_timeout": ("events_per_sec", "min"),
    "kernel_process": ("events_per_sec", "min"),
    "scenario_closed_tls": ("wall_s", "max"),
    "scenario_open_spill": ("wall_s", "max"),
}


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Datapath regressions as human-readable strings (empty = pass)."""
    regressions = []
    for section in GUARDED_SECTIONS:
        for size, base_entry in baseline.get(section, {}).items():
            fresh_entry = fresh.get(section, {}).get(size)
            if fresh_entry is None:
                regressions.append("%s/%s: missing from fresh run" % (section, size))
                continue
            base_mbps = base_entry["after_mbps"]
            fresh_mbps = fresh_entry["after_mbps"]
            floor = (1.0 - tolerance) * base_mbps
            if fresh_mbps < floor:
                regressions.append(
                    "%s/%s B: %.2f MB/s < %.2f MB/s (baseline %.2f, -%.0f%%)"
                    % (
                        section,
                        size,
                        fresh_mbps,
                        floor,
                        base_mbps,
                        100.0 * (1.0 - fresh_mbps / base_mbps),
                    )
                )
    return regressions


def compare_cluster(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Cluster-simulator regressions (empty = pass)."""
    regressions = []
    for section, (metric, direction) in sorted(CLUSTER_GUARDS.items()):
        base_entry = baseline.get(section)
        if base_entry is None:
            continue  # baseline predates this section; nothing to gate
        fresh_entry = fresh.get(section)
        if fresh_entry is None:
            regressions.append("%s: missing from fresh run" % section)
            continue
        base_value = base_entry[metric]
        fresh_value = fresh_entry[metric]
        if direction == "min" and fresh_value < (1.0 - tolerance) * base_value:
            regressions.append(
                "%s: %s %.0f < floor %.0f (baseline %.0f, -%.0f%%)"
                % (section, metric, fresh_value,
                   (1.0 - tolerance) * base_value, base_value,
                   100.0 * (1.0 - fresh_value / base_value))
            )
        elif direction == "max" and fresh_value > (1.0 + tolerance) * base_value:
            regressions.append(
                "%s: %s %.3f > ceiling %.3f (baseline %.3f, +%.0f%%)"
                % (section, metric, fresh_value,
                   (1.0 + tolerance) * base_value, base_value,
                   100.0 * (fresh_value / base_value - 1.0))
            )
    return regressions


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv=None) -> int:
    """CLI entry; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=datapath_bench.RESULTS_PATH,
        help="datapath baseline JSON (default: committed BENCH_datapath.json)",
    )
    parser.add_argument(
        "--cluster-baseline",
        default=cluster_bench.RESULTS_PATH,
        help="cluster baseline JSON (default: committed BENCH_cluster.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression (default 0.20)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per point (default 3)"
    )
    parser.add_argument(
        "--skip-datapath", action="store_true", help="gate only the cluster DES"
    )
    parser.add_argument(
        "--skip-cluster", action="store_true", help="gate only the datapath"
    )
    parser.add_argument(
        "--skip-faults", action="store_true", help="skip the fault-hook gate"
    )
    parser.add_argument(
        "--faults-tolerance",
        type=float,
        default=0.02,
        help="allowed disabled-hook overhead fraction (default 0.02)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines from this run instead of gating",
    )
    args = parser.parse_args(argv)

    regressions, gated_points = [], 0
    if not args.skip_datapath:
        fresh = datapath_bench.bench_all(repeats=args.repeats)
        if args.update:
            print("baseline updated:", datapath_bench.write_results(fresh, args.baseline))
        else:
            try:
                baseline = _load(args.baseline)
            except FileNotFoundError:
                print("no baseline at %s; run with --update to create one"
                      % args.baseline)
                return 2
            regressions += compare(baseline, fresh, args.tolerance)
            gated_points += sum(len(baseline.get(s, {})) for s in GUARDED_SECTIONS)
    if not args.skip_cluster:
        fresh_cluster = cluster_bench.bench_all(repeats=args.repeats)
        if args.update:
            print("cluster baseline updated:",
                  cluster_bench.write_results(fresh_cluster, args.cluster_baseline))
        else:
            try:
                cluster_baseline = _load(args.cluster_baseline)
            except FileNotFoundError:
                print("no cluster baseline at %s; run with --update to create one"
                      % args.cluster_baseline)
                return 2
            regressions += compare_cluster(cluster_baseline, fresh_cluster,
                                           args.tolerance)
            gated_points += sum(
                1 for s in CLUSTER_GUARDS if s in cluster_baseline)
    if not args.skip_faults:
        # Machine-relative (no committed baseline): the guard-branch cost
        # is measured and multiplied out on this machine, in this run.
        overhead = faults_bench.bench_disabled_overhead(repeats=args.repeats)
        gated_points += 1
        if overhead["overhead_fraction"] > args.faults_tolerance:
            regressions.append(
                "fault hooks: %.2f%% disabled overhead > %.2f%% "
                "(%d guards/op x %.1f ns)"
                % (100 * overhead["overhead_fraction"],
                   100 * args.faults_tolerance,
                   overhead["hooks_per_op"], overhead["branch_ns"])
            )
    if args.update:
        return 0

    if regressions:
        print("PERF REGRESSION (tolerance %.0f%%):" % (100 * args.tolerance))
        for line in regressions:
            print("  " + line)
        return 1
    print(
        "perf gate passed: %d points within %.0f%% of baseline"
        % (gated_points, 100 * args.tolerance)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
