"""Perf-regression gate for the datapath, cluster DES, faults, and overload.

Each gate is one row in the declarative ``GATES`` table below, keyed by
the committed baseline file it reads (``--list`` prints the table):

* ``BENCH_datapath.json`` — datapath throughput (``datapath_bench``): the
  ``after``-path MB/s per (section, size) must not drop more than
  ``--tolerance`` (default 20%).
* ``BENCH_cluster.json`` — cluster-simulator speed (``cluster_bench``):
  kernel events/sec must not drop, and end-to-end scenario wall time must
  not grow, by more than the same tolerance.
* compcpy5x (machine-relative, no baseline): the 64 KB ``compcpy_e2e``
  point must stay >= ``--compcpy-speedup-floor`` (default 5x) above the
  recorded pre-fast-path seed throughput.
* fleetvec (machine-relative, no baseline): the vector fleet tier must
  stay >= ``--fleetvec-speedup-floor`` (default 20x) faster than the
  event kernel on the fleet-scale spill scenario, and its replay-stream
  crosscheck against the kernel must pass.
* fault hooks (``faults_bench``, machine-relative, no baseline): the
  measured cost of the ``plan is not None`` guards on a plan-less session
  must stay under ``--faults-tolerance`` (default 2%) of one offload —
  the disabled fault path is required to be essentially free.
* ``BENCH_overload.json`` — overload control (``overload_bench``): the
  controlled goodput at 2x offered load must stay >= 70% of peak, the
  uncontrolled curve must still demonstrate collapse, and capacity /
  goodput must stay within tolerance of the baseline.
* ``BENCH_replication.json`` — replicated storage (``replication_bench``):
  the consistency checker must report zero violations, SmartDIMM hop
  placement must beat CPU onload on goodput under fault at 16 KB values,
  and the headline goodput figures must stay within tolerance of the
  baseline.
* ``BENCH_qos.json`` — multi-tenant QoS (``qos_bench``): the fairness
  sweep's own gate (victim goodput >= 85% of isolated with and without
  chaos, aggressor capped near fair share, surge p99 bounded, zero
  cross-tenant retry-budget exhaustion), the FIFO contrast arm must
  still demonstrate interference, and capacity / victim ratios must
  stay within tolerance of the baseline.
* ``BENCH_ras.json`` — memory RAS / integrity (``ras_bench``): the
  sweep's own gate (zero undetected corruption wherever verification is
  on, verify-off contrast arm still leaks, patrol-scrub overhead under
  its ceiling, scrubbing shrinks the at-risk line count, quarantine
  trips and re-admits), plus detection-coverage / retired-row floors
  and a scrub-overhead ceiling against the baseline.

* matrix3x (machine-relative, no baseline): the experiment-matrix
  run-pool (``matrix_bench``) must keep the pooled quick matrix >=
  ``--matrix-speedup-floor`` (default 3x) faster than the serial run
  with byte-identical payloads; auto-skips below 4 cores.

Rows marked ``optional`` in the ``GATES`` table (replication, qos, ras)
share one skip path: when their committed baseline file is absent the
row is skipped with a note instead of failing — run with ``--update``
to create the baseline and arm the row.

``--jobs N`` evaluates gate rows concurrently in N threads (output stays
in table order); the wall-clock-sensitive rows get noisier as N grows,
so keep ``--jobs 1`` when a timing row is near its floor.

Any regression fails the gate with exit code 1 — use it in CI or before
merging changes to any layer::

    PYTHONPATH=src python benchmarks/perf/check_regression.py

Absolute wall times vary across machines; throughput *ratios* between a
fresh run and a baseline recorded on the same machine are what the gate is
for.  ``--update`` rewrites the baselines from the fresh run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass

import cluster_bench
import datapath_bench
import faults_bench
import matrix_bench
import overload_bench
import qos_bench
import ras_bench
import replication_bench

#: Datapath sections whose `after_mbps` is guarded per record size.
GUARDED_SECTIONS = ("aes_gcm_encrypt", "ghash", "deflate", "compcpy_e2e")

#: Cluster sections -> (metric, direction); "min" guards a floor
#: (throughput must not drop), "max" a ceiling (wall time must not grow).
CLUSTER_GUARDS = {
    "kernel_timeout": ("events_per_sec", "min"),
    "kernel_process": ("events_per_sec", "min"),
    "scenario_closed_tls": ("wall_s", "max"),
    "scenario_open_spill": ("wall_s", "max"),
    "fleet_vector": ("speedup_vs_des", "min"),
}


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Datapath regressions as human-readable strings (empty = pass)."""
    regressions = []
    for section in GUARDED_SECTIONS:
        for size, base_entry in baseline.get(section, {}).items():
            fresh_entry = fresh.get(section, {}).get(size)
            if fresh_entry is None:
                regressions.append("%s/%s: missing from fresh run" % (section, size))
                continue
            base_mbps = base_entry["after_mbps"]
            fresh_mbps = fresh_entry["after_mbps"]
            floor = (1.0 - tolerance) * base_mbps
            if fresh_mbps < floor:
                regressions.append(
                    "%s/%s B: %.2f MB/s < %.2f MB/s (baseline %.2f, -%.0f%%)"
                    % (
                        section,
                        size,
                        fresh_mbps,
                        floor,
                        base_mbps,
                        100.0 * (1.0 - fresh_mbps / base_mbps),
                    )
                )
    return regressions


def compare_cluster(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Cluster-simulator regressions (empty = pass)."""
    regressions = []
    for section, (metric, direction) in sorted(CLUSTER_GUARDS.items()):
        base_entry = baseline.get(section)
        if base_entry is None:
            continue  # baseline predates this section; nothing to gate
        fresh_entry = fresh.get(section)
        if fresh_entry is None:
            regressions.append("%s: missing from fresh run" % section)
            continue
        base_value = base_entry[metric]
        fresh_value = fresh_entry[metric]
        if direction == "min" and fresh_value < (1.0 - tolerance) * base_value:
            regressions.append(
                "%s: %s %.0f < floor %.0f (baseline %.0f, -%.0f%%)"
                % (section, metric, fresh_value,
                   (1.0 - tolerance) * base_value, base_value,
                   100.0 * (1.0 - fresh_value / base_value))
            )
        elif direction == "max" and fresh_value > (1.0 + tolerance) * base_value:
            regressions.append(
                "%s: %s %.3f > ceiling %.3f (baseline %.3f, +%.0f%%)"
                % (section, metric, fresh_value,
                   (1.0 + tolerance) * base_value, base_value,
                   100.0 * (fresh_value / base_value - 1.0))
            )
    return regressions


def compare_compcpy_speedup(fresh: dict, floor: float) -> list:
    """Machine-relative 5x gate for the batched line-op fast path.

    ``speedup_vs_seed`` compares a fresh 64 KB compcpy_e2e run against the
    recorded pre-fast-path throughput (``SEED_COMPCPY_MBPS``), so the gate
    fails if the batched path's advantage erodes below the required floor.
    """
    entry = fresh.get("65536", {})
    speedup = entry.get("speedup_vs_seed")
    if speedup is None:
        return ["compcpy5x: no speedup_vs_seed for the 65536 B point"]
    if speedup < floor:
        return [
            "compcpy5x: 64 KB compcpy_e2e %.2fx vs seed < required %.1fx "
            "(%.2f MB/s vs seed %.2f MB/s)"
            % (speedup, floor, entry["after_mbps"], entry["seed_mbps"])
        ]
    return []


def compare_fleetvec(fresh: dict, floor: float) -> list:
    """Machine-relative 20x gate for the vector fleet tier.

    Times the event kernel and the vector tier on the same fleet-scale
    spill scenario in this run (no committed baseline — both walls come
    from the same machine moments apart), requires the speedup to hold
    the floor, and requires the replay-stream crosscheck to still pass —
    a fast tier that no longer matches the kernel is not a speedup.
    """
    perf = fresh["fleet_vector"]
    agree = fresh["vector_crosscheck"]
    regressions = []
    speedup = perf["speedup_vs_des"]
    if speedup < floor:
        regressions.append(
            "fleetvec: vector tier %.1fx vs DES < required %.1fx "
            "(event %.2fs, vector %.3fs)"
            % (speedup, floor, perf["event_wall_s"], perf["vector_wall_s"])
        )
    if not agree["passed"]:
        regressions.append(
            "fleetvec: tier crosscheck FAILED (latency L1 %.3f, tol %.2f)"
            % (agree["latency_bucket_l1_frac"], agree["latency_bucket_tol"])
        )
    return regressions


def compare_faults(fresh: dict, tolerance: float) -> list:
    """Machine-relative fault-hook gate: disabled guards must be free."""
    if fresh["overhead_fraction"] > tolerance:
        return [
            "fault hooks: %.2f%% disabled overhead > %.2f%% "
            "(%d guards/op x %.1f ns)"
            % (100 * fresh["overhead_fraction"], 100 * tolerance,
               fresh["hooks_per_op"], fresh["branch_ns"])
        ]
    return []


@dataclass(frozen=True)
class Gate:
    """One row of the regression gate: a bench run plus its verdict.

    `baseline_flag` names the CLI override for the committed baseline
    path; None marks a machine-relative gate (fresh run judged against
    itself, nothing committed, nothing for ``--update`` to rewrite).
    `points` receives the loaded baseline (None when machine-relative)
    and returns how many guarded values the gate covers.
    """

    name: str            # also spells the --skip-<name> flag
    describe: str        # one line for --list
    baseline_flag: str   # e.g. "--baseline"; None = machine-relative
    bench: object        # module providing write_results() for --update
    run: callable        # args -> fresh results dict
    verdict: callable    # (baseline, fresh, args) -> list of regressions
    points: callable     # baseline -> number of guarded values
    optional: bool = False  # missing baseline = skip with a note, not exit 2

    @property
    def baseline_dest(self):
        return (self.baseline_flag.lstrip("-").replace("-", "_")
                if self.baseline_flag else None)

    @property
    def baseline_name(self):
        return (os.path.basename(self.bench.RESULTS_PATH)
                if self.baseline_flag else "(machine-relative)")


#: The whole gate, declaratively.  Adding a bench = adding one row.
GATES = (
    Gate("datapath", "datapath throughput: after_mbps floors per section/size",
         "--baseline", datapath_bench,
         run=lambda args: datapath_bench.bench_all(repeats=args.repeats),
         verdict=lambda base, fresh, args: compare(base, fresh, args.tolerance),
         points=lambda base: sum(len(base.get(s, {})) for s in GUARDED_SECTIONS)),
    Gate("cluster", "cluster DES speed: events/sec floors, wall-time ceilings",
         "--cluster-baseline", cluster_bench,
         run=lambda args: cluster_bench.bench_all(repeats=args.repeats),
         verdict=lambda base, fresh, args: compare_cluster(base, fresh,
                                                           args.tolerance),
         points=lambda base: sum(1 for s in CLUSTER_GUARDS if s in base)),
    Gate("compcpy5x", "batched fast path keeps 64 KB compcpy_e2e >= 5x seed",
         None, datapath_bench,
         # Best-of-3 minimum: this is a ratio against a fixed seed number,
         # so it needs more noise immunity than the baseline-relative rows.
         run=lambda args: datapath_bench.bench_compcpy(
             sizes=(65536,), repeats=max(3, args.repeats)),
         verdict=lambda base, fresh, args: compare_compcpy_speedup(
             fresh, args.compcpy_speedup_floor),
         points=lambda base: 1),
    Gate("fleetvec", "vector fleet tier stays >= 20x the DES kernel + agrees",
         None, cluster_bench,
         run=lambda args: {
             "fleet_vector": cluster_bench.bench_fleet_vector(
                 repeats=max(3, args.repeats)),
             "vector_crosscheck": cluster_bench.bench_vector_crosscheck(),
         },
         verdict=lambda base, fresh, args: compare_fleetvec(
             fresh, args.fleetvec_speedup_floor),
         points=lambda base: 2),
    Gate("faults", "disabled fault hooks stay under --faults-tolerance",
         None, faults_bench,
         run=lambda args: faults_bench.bench_disabled_overhead(
             repeats=args.repeats),
         verdict=lambda base, fresh, args: compare_faults(
             fresh, args.faults_tolerance),
         points=lambda base: 1),
    Gate("overload", "overload control: goodput >= 70% of peak at 2x + floors",
         "--overload-baseline", overload_bench,
         run=lambda args: overload_bench.bench_all(repeats=args.repeats),
         verdict=lambda base, fresh, args: overload_bench.compare(
             base, fresh, args.tolerance),
         points=lambda base: 2 + sum(
             1 for m in overload_bench.GUARDED_METRICS
             if m in base.get("sweep", {}).get("summary", {}))),
    Gate("replication",
         "replicated storage: zero violations + smartdimm beats cpu "
         "goodput under fault + floors",
         "--replication-baseline", replication_bench,
         run=lambda args: replication_bench.bench_all(repeats=args.repeats),
         verdict=lambda base, fresh, args: replication_bench.compare(
             base, fresh, args.tolerance),
         points=lambda base: 2 + sum(
             1 for m in replication_bench.GUARDED_METRICS
             if m in base.get("summary", {})),
         optional=True),
    Gate("qos",
         "multi-tenant fairness: victim >= 85% isolated goodput, aggressor "
         "capped, no cross-tenant budget drain",
         "--qos-baseline", qos_bench,
         run=lambda args: qos_bench.bench_all(repeats=args.repeats),
         verdict=lambda base, fresh, args: qos_bench.compare(
             base, fresh, args.tolerance),
         points=lambda base: 7 + sum(
             1 for m in qos_bench.GUARDED_METRICS
             if m in base.get("fairness", {}).get("summary", {})),
         optional=True),
    Gate("ras",
         "memory RAS/integrity: zero undetected corruption with verify on, "
         "scrub overhead under ceiling, quarantine trips + re-admits",
         "--ras-baseline", ras_bench,
         run=lambda args: ras_bench.bench_all(repeats=args.repeats),
         verdict=lambda base, fresh, args: ras_bench.compare(
             base, fresh, args.tolerance),
         points=lambda base: 9 + sum(
             1 for m in (ras_bench.GUARDED_METRICS
                         + ras_bench.GUARDED_CEILINGS)
             if m in base.get("summary", {})),
         optional=True),
    Gate("matrix3x",
         "experiment matrix: pooled quick run >= 3x serial wall clock, "
         "byte-identical payloads (auto-skips below 4 cores)",
         None, matrix_bench,
         run=lambda args: matrix_bench.bench_matrix3x(),
         verdict=lambda base, fresh, args: matrix_bench.compare_matrix3x(
             fresh, args.matrix_speedup_floor),
         points=lambda base: 2),
)


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _evaluate(gate: Gate, args) -> tuple:
    """Run one gate row; returns (regressions, points, notes, exit_code).

    Pure with respect to shared state (all output goes through ``notes``)
    so rows can be evaluated concurrently under ``--jobs N`` and printed
    back in table order.  ``exit_code`` is None unless the row demands an
    immediate non-regression exit (a required baseline is missing).
    """
    notes = []
    if getattr(args, "skip_" + gate.name):
        return [], 0, notes, None
    if gate.baseline_flag is None:
        if args.update:
            return [], 0, notes, None  # nothing committed to rewrite
        return gate.verdict(None, gate.run(args), args), gate.points(None), \
            notes, None
    path = getattr(args, gate.baseline_dest)
    if gate.optional and not args.update and not os.path.exists(path):
        notes.append("no %s baseline at %s; gate auto-skipped "
                     "(run with --update to create one)" % (gate.name, path))
        return [], 0, notes, None
    fresh = gate.run(args)
    if args.update:
        notes.append("%s baseline updated: %s"
                     % (gate.name, gate.bench.write_results(fresh, path)))
        return [], 0, notes, None
    try:
        baseline = _load(path)
    except FileNotFoundError:
        notes.append("no %s baseline at %s; run with --update to create one"
                     % (gate.name, path))
        return [], 0, notes, 2
    return gate.verdict(baseline, fresh, args), gate.points(baseline), \
        notes, None


def main(argv=None) -> int:
    """CLI entry; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    for gate in GATES:
        if gate.baseline_flag:
            parser.add_argument(
                gate.baseline_flag,
                default=gate.bench.RESULTS_PATH,
                help="%s baseline JSON (default: committed %s)"
                     % (gate.name, gate.baseline_name),
            )
        parser.add_argument(
            "--skip-" + gate.name, action="store_true",
            help="skip the %s gate" % gate.name,
        )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression (default 0.20)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per point (default 3)"
    )
    parser.add_argument(
        "--compcpy-speedup-floor",
        type=float,
        default=5.0,
        help="required 64 KB compcpy_e2e speedup vs the recorded seed "
             "throughput (default 5.0)",
    )
    parser.add_argument(
        "--fleetvec-speedup-floor",
        type=float,
        default=20.0,
        help="required vector-tier speedup over the event kernel on the "
             "fleet spill scenario (default 20.0)",
    )
    parser.add_argument(
        "--faults-tolerance",
        type=float,
        default=0.02,
        help="allowed disabled-hook overhead fraction (default 0.02)",
    )
    parser.add_argument(
        "--matrix-speedup-floor",
        type=float,
        default=3.0,
        help="required pooled-vs-serial speedup for the quick experiment "
             "matrix (default 3.0; the row auto-skips below 4 cores)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="evaluate gate rows concurrently in N threads (default 1; "
             "wall-clock-sensitive rows get noisier as N grows, so keep "
             "--jobs 1 when a timing row is near its floor)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines from this run instead of gating",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the gate table and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        print("perf gates (--skip-<name> to skip one):")
        for gate in GATES:
            print("  %-9s %-22s %s%s"
                  % (gate.name, gate.baseline_name, gate.describe,
                     " [optional]" if gate.optional else ""))
        print("[optional] rows auto-skip with a note when their committed "
              "baseline is absent; --update creates it and arms the row.")
        return 0

    if args.jobs > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=args.jobs) as pool:
            outcomes = list(pool.map(lambda g: _evaluate(g, args), GATES))
    else:
        outcomes = [_evaluate(gate, args) for gate in GATES]

    regressions, gated_points = [], 0
    for gate_regressions, points, notes, exit_code in outcomes:
        for note in notes:
            print(note)
        if exit_code is not None:
            return exit_code
        regressions += gate_regressions
        gated_points += points
    if args.update:
        return 0

    if regressions:
        print("PERF REGRESSION (tolerance %.0f%%):" % (100 * args.tolerance))
        for line in regressions:
            print("  " + line)
        return 1
    print(
        "perf gate passed: %d points within %.0f%% of baseline"
        % (gated_points, 100 * args.tolerance)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
