"""Perf-regression gate for the datapath fast path.

Re-runs the datapath micro-benchmarks and compares the fresh ``after``-path
throughput against the committed baseline (``BENCH_datapath.json`` at the
repo root).  A drop of more than ``--tolerance`` (default 20%) on any
(section, size) fails the gate with exit code 1 — use it in CI or before
merging datapath changes::

    PYTHONPATH=src python benchmarks/perf/check_regression.py

Absolute wall times vary across machines; throughput *ratios* between a
fresh run and a baseline recorded on the same machine are what the gate is
for.  ``--update`` rewrites the baseline from the fresh run.
"""

from __future__ import annotations

import argparse
import json
import sys

import datapath_bench

#: Sections whose `after_mbps` is guarded per record size.
GUARDED_SECTIONS = ("aes_gcm_encrypt", "ghash", "deflate", "compcpy_e2e")


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Returns a list of human-readable regression strings (empty = pass)."""
    regressions = []
    for section in GUARDED_SECTIONS:
        for size, base_entry in baseline.get(section, {}).items():
            fresh_entry = fresh.get(section, {}).get(size)
            if fresh_entry is None:
                regressions.append("%s/%s: missing from fresh run" % (section, size))
                continue
            base_mbps = base_entry["after_mbps"]
            fresh_mbps = fresh_entry["after_mbps"]
            floor = (1.0 - tolerance) * base_mbps
            if fresh_mbps < floor:
                regressions.append(
                    "%s/%s B: %.2f MB/s < %.2f MB/s (baseline %.2f, -%.0f%%)"
                    % (
                        section,
                        size,
                        fresh_mbps,
                        floor,
                        base_mbps,
                        100.0 * (1.0 - fresh_mbps / base_mbps),
                    )
                )
    return regressions


def main(argv=None) -> int:
    """CLI entry; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=datapath_bench.RESULTS_PATH,
        help="baseline JSON (default: committed BENCH_datapath.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional throughput drop (default 0.20)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per point (default 3)"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    args = parser.parse_args(argv)

    fresh = datapath_bench.bench_all(repeats=args.repeats)
    if args.update:
        path = datapath_bench.write_results(fresh, args.baseline)
        print("baseline updated:", path)
        return 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print("no baseline at %s; run with --update to create one" % args.baseline)
        return 2

    regressions = compare(baseline, fresh, args.tolerance)
    if regressions:
        print("PERF REGRESSION (tolerance %.0f%%):" % (100 * args.tolerance))
        for line in regressions:
            print("  " + line)
        return 1
    print(
        "perf gate passed: %d points within %.0f%% of baseline"
        % (
            sum(len(baseline.get(s, {})) for s in GUARDED_SECTIONS),
            100 * args.tolerance,
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
