"""Perf-marked benchmark: fault hooks must be essentially free when off.

Excluded from tier-1 (``testpaths = ["tests"]`` plus the ``perf`` marker);
run explicitly with::

    PYTHONPATH=src python -m pytest -m perf benchmarks/perf -q

The disabled-hook assertion mirrors the 2% gate in ``check_regression.py``
(the counting + branch-timing method has low variance, so the same bound
holds here); the chaos-mode assertion is loose — attaching a plan buys
checksum verification and the resilience guard, which are allowed to cost
real time.
"""

import pytest

import faults_bench

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def results():
    """One full sweep shared by every assertion in this module."""
    return faults_bench.bench_all()


def test_disabled_hooks_under_two_percent(results):
    """The `plan is None` guards cost <2% of a plan-less offload."""
    overhead = results["disabled_hook_overhead"]
    assert overhead["hooks_per_op"] > 0, "counting plan saw no hook executions"
    assert overhead["overhead_fraction"] < 0.02, (
        "disabled fault hooks cost %.2f%% of an op (%d guards x %.1f ns)"
        % (100 * overhead["overhead_fraction"], overhead["hooks_per_op"],
           overhead["branch_ns"])
    )


def test_chaos_mode_overhead_bounded(results):
    """Inert chaos mode (plan attached, nothing firing) stays under 2x."""
    assert results["tls_chaos_inert"]["overhead_vs_disabled"] < 1.0


def test_write_baseline(results, tmp_path):
    """The sweep serialises cleanly on demand."""
    import json

    path = faults_bench.write_results(results, str(tmp_path / "BENCH_faults.json"))
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded["disabled_hook_overhead"]["hooks_per_op"] == (
        results["disabled_hook_overhead"]["hooks_per_op"])
