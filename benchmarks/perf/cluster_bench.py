"""Cluster-simulator performance benchmarks.

Times the DES layer itself — the thing later scaling PRs will lean on —
and emits ``BENCH_cluster.json`` at the repo root so
``check_regression.py`` can gate kernel slowdowns the same way it gates
datapath throughput:

* ``kernel_timeout`` — raw event-loop throughput: a self-rescheduling
  callback chain (one heap push + pop + dispatch per event).
* ``kernel_process`` — process-machinery throughput: coroutines yielding
  timeouts (timeout event + resume post per iteration).
* ``scenario_closed_tls`` — end-to-end wall time of a closed-loop TLS
  scenario (the CLI's default shape, scaled down).
* ``scenario_open_spill`` — end-to-end wall time of the saturated-DSA
  bursty scenario with the adaptive-spill scheduler (the telemetry-heavy
  path: histograms, backlog accounting, spill decisions).
* ``fleet_vector`` — the vector fleet tier vs the event kernel on the
  fleet-scale burst-overload spill scenario: one timed event-tier run,
  best-of-N vector-tier runs (batch arrival stream), and the resulting
  ``speedup_vs_des`` / effective events/sec.  ``check_regression.py``'s
  machine-relative ``fleetvec`` gate requires the speedup to stay >= 20x.
* ``vector_crosscheck`` — the same scenario through
  :func:`repro.cluster.vector.crosscheck_tiers` (replay arrivals, so the
  tiers consume identical RNG draws): counter deltas and the latency-
  histogram L1 distance, with ``passed`` as the recorded verdict.

Scenario event counts are deterministic (seeded DES), so events/sec and
wall time move together; both are recorded, wall time is what the gate
reads.  Timing is best-of-N: the gate guards >20% regressions, not a
statistical claim.
"""

from __future__ import annotations

import json
import os
import time

from repro.cluster import ClusterScenario, run_scenario
from repro.cluster.kernel import Simulator

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_cluster.json")

KERNEL_EVENTS = 120_000


def _best_of(repeats, fn):
    best = None
    for _ in range(repeats):
        value = fn()
        if best is None or value["wall_s"] < best["wall_s"]:
            best = value
    return best


def bench_kernel_timeout(events: int = KERNEL_EVENTS) -> dict:
    """Pure heap throughput: one event per scheduled callback."""
    sim = Simulator(seed=0)
    remaining = {"n": events}

    def tick(_):
        remaining["n"] -= 1
        if remaining["n"] > 0:
            sim.schedule(1e-6, tick)

    sim.schedule(1e-6, tick)
    start = time.perf_counter()
    processed = sim.run()
    wall = time.perf_counter() - start
    return {"events": processed, "wall_s": wall, "events_per_sec": processed / wall}


def bench_kernel_process(iterations: int = KERNEL_EVENTS // 2) -> dict:
    """Coroutine machinery: each loop is a timeout fire + process resume."""
    sim = Simulator(seed=0)

    def worker(count):
        for _ in range(count):
            yield 1e-6

    sim.spawn(worker(iterations))
    start = time.perf_counter()
    processed = sim.run()
    wall = time.perf_counter() - start
    return {"events": processed, "wall_s": wall, "events_per_sec": processed / wall}


def _scenario_entry(scenario: ClusterScenario) -> dict:
    start = time.perf_counter()
    report = run_scenario(scenario)
    wall = time.perf_counter() - start
    return {
        "events": report.events_processed,
        "completed": report.completed,
        "wall_s": wall,
        "events_per_sec": report.events_processed / wall,
    }


def bench_scenario_closed_tls() -> dict:
    return _scenario_entry(ClusterScenario(
        servers=2, channels=6, connections=256, ulp="tls",
        message_bytes=16384, scheduler="least-loaded",
        duration_s=0.006, warmup_s=0.001, seed=1,
    ))


def bench_scenario_open_spill() -> dict:
    return _scenario_entry(ClusterScenario(
        servers=2, channels=4, ulp="deflate", placement="smartdimm",
        message_bytes=16384, mode="open", arrival="bursty",
        rate_rps=100e3, burst_rps=160e3, base_s=0.008, burst_s=0.014,
        dsa_bytes_per_sec=300e6, scheduler="adaptive-spill",
        duration_s=0.03, warmup_s=0.004, seed=7,
    ))


def _fleet_spill_scenario() -> ClusterScenario:
    """The fleet-scale burst-overload spill scenario both vector sections
    run: a 4x per-server scale-up of ``scenario_open_spill`` (same
    per-channel service time, same burst duty cycle) driven past DSA
    capacity during bursts so the adaptive-spill rule fires thousands of
    times.  At 1 ms epochs the cohorts are large enough (~550 requests)
    that the vector tier's fixed per-cohort cost amortises to nothing."""
    return ClusterScenario(
        servers=2, channels=8, threads=32, ulp="deflate",
        placement="smartdimm", message_bytes=16384, mode="open",
        arrival="bursty", rate_rps=800e3, burst_rps=1280e3,
        base_s=0.008, burst_s=0.014, dsa_bytes_per_sec=600e6,
        scheduler="adaptive-spill",
        duration_s=0.12, warmup_s=0.018, seed=7, epoch_s=0.001,
    )


def bench_fleet_vector(repeats: int = 3) -> dict:
    """Vector tier vs event kernel on the fleet spill scenario.

    The event tier is timed once (its ~6 s wall has low relative noise);
    the vector tier takes the best of `repeats` runs with the batch
    arrival stream (the headline configuration — replay's per-request
    Python RNG loop is an arrival-generation benchmark, not a tier one).
    ``effective_events_per_sec`` is the event tier's event count over the
    vector tier's wall: the DES-equivalent work rate the vector tier
    sustains.
    """
    from dataclasses import replace

    from repro.cluster.vector import run_vector_scenario

    scenario = _fleet_spill_scenario()
    start = time.perf_counter()
    event_report = run_scenario(scenario)
    event_wall = time.perf_counter() - start
    vector_scenario = replace(scenario, tier="vector",
                              arrival_stream="batch")
    vector_wall, vector_report = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        vector_report = run_vector_scenario(vector_scenario)
        wall = time.perf_counter() - start
        if vector_wall is None or wall < vector_wall:
            vector_wall = wall
    return {
        "epoch_s": scenario.epoch_s,
        "event_wall_s": event_wall,
        "event_events": event_report.events_processed,
        "event_completed": event_report.completed,
        "event_spilled": event_report.spilled,
        "vector_wall_s": vector_wall,
        "vector_completed": vector_report.completed,
        "speedup_vs_des": event_wall / vector_wall,
        "effective_events_per_sec": event_report.events_processed / vector_wall,
        # keep the shared-schema fields so generic tooling can read this row
        "events": event_report.events_processed,
        "wall_s": vector_wall,
        "events_per_sec": event_report.events_processed / vector_wall,
    }


def bench_vector_crosscheck() -> dict:
    """Tier-agreement verdict on the fleet spill scenario (replay stream)."""
    from repro.cluster.vector import crosscheck_tiers

    verdict = crosscheck_tiers(_fleet_spill_scenario(),
                               count_rel_tol=0.10, bucket_frac_tol=0.5)
    counts = {name: {k: entry[k] for k in ("event", "vector", "delta")}
              for name, entry in verdict["counts"].items()}
    return {
        "passed": verdict["passed"],
        "counts": counts,
        "latency_bucket_l1_frac": verdict["latency_bucket_l1_frac"],
        "latency_bucket_tol": verdict["latency_bucket_tol"],
        "event_events_processed": verdict["event_events_processed"],
        "vector_events_processed": verdict["vector_events_processed"],
    }


def bench_all(repeats: int = 3) -> dict:
    return {
        "kernel_timeout": _best_of(repeats, bench_kernel_timeout),
        "kernel_process": _best_of(repeats, bench_kernel_process),
        "scenario_closed_tls": _best_of(repeats, bench_scenario_closed_tls),
        "scenario_open_spill": _best_of(repeats, bench_scenario_open_spill),
        "fleet_vector": bench_fleet_vector(repeats),
        "vector_crosscheck": bench_vector_crosscheck(),
    }


def write_results(results: dict, path: str = RESULTS_PATH) -> str:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main() -> int:
    results = bench_all()
    for section, entry in sorted(results.items()):
        if section == "vector_crosscheck":
            print("%-22s passed=%s  latency L1 %.3f (tol %.2f)"
                  % (section, entry["passed"],
                     entry["latency_bucket_l1_frac"],
                     entry["latency_bucket_tol"]))
            continue
        print("%-22s %8.0fk events/s  (%.3fs wall, %d events)"
              % (section, entry["events_per_sec"] / 1e3, entry["wall_s"],
                 entry["events"]))
        if section == "fleet_vector":
            print("%22s %.1fx vs DES (event %.2fs, vector %.3fs)"
                  % ("", entry["speedup_vs_des"], entry["event_wall_s"],
                     entry["vector_wall_s"]))
    path = write_results(results)
    print("wrote", path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
