"""Cluster-simulator performance benchmarks.

Times the DES layer itself — the thing later scaling PRs will lean on —
and emits ``BENCH_cluster.json`` at the repo root so
``check_regression.py`` can gate kernel slowdowns the same way it gates
datapath throughput:

* ``kernel_timeout`` — raw event-loop throughput: a self-rescheduling
  callback chain (one heap push + pop + dispatch per event).
* ``kernel_process`` — process-machinery throughput: coroutines yielding
  timeouts (timeout event + resume post per iteration).
* ``scenario_closed_tls`` — end-to-end wall time of a closed-loop TLS
  scenario (the CLI's default shape, scaled down).
* ``scenario_open_spill`` — end-to-end wall time of the saturated-DSA
  bursty scenario with the adaptive-spill scheduler (the telemetry-heavy
  path: histograms, backlog accounting, spill decisions).

Scenario event counts are deterministic (seeded DES), so events/sec and
wall time move together; both are recorded, wall time is what the gate
reads.  Timing is best-of-N: the gate guards >20% regressions, not a
statistical claim.
"""

from __future__ import annotations

import json
import os
import time

from repro.cluster import ClusterScenario, run_scenario
from repro.cluster.kernel import Simulator

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_cluster.json")

KERNEL_EVENTS = 120_000


def _best_of(repeats, fn):
    best = None
    for _ in range(repeats):
        value = fn()
        if best is None or value["wall_s"] < best["wall_s"]:
            best = value
    return best


def bench_kernel_timeout(events: int = KERNEL_EVENTS) -> dict:
    """Pure heap throughput: one event per scheduled callback."""
    sim = Simulator(seed=0)
    remaining = {"n": events}

    def tick(_):
        remaining["n"] -= 1
        if remaining["n"] > 0:
            sim.schedule(1e-6, tick)

    sim.schedule(1e-6, tick)
    start = time.perf_counter()
    processed = sim.run()
    wall = time.perf_counter() - start
    return {"events": processed, "wall_s": wall, "events_per_sec": processed / wall}


def bench_kernel_process(iterations: int = KERNEL_EVENTS // 2) -> dict:
    """Coroutine machinery: each loop is a timeout fire + process resume."""
    sim = Simulator(seed=0)

    def worker(count):
        for _ in range(count):
            yield 1e-6

    sim.spawn(worker(iterations))
    start = time.perf_counter()
    processed = sim.run()
    wall = time.perf_counter() - start
    return {"events": processed, "wall_s": wall, "events_per_sec": processed / wall}


def _scenario_entry(scenario: ClusterScenario) -> dict:
    start = time.perf_counter()
    report = run_scenario(scenario)
    wall = time.perf_counter() - start
    return {
        "events": report.events_processed,
        "completed": report.completed,
        "wall_s": wall,
        "events_per_sec": report.events_processed / wall,
    }


def bench_scenario_closed_tls() -> dict:
    return _scenario_entry(ClusterScenario(
        servers=2, channels=6, connections=256, ulp="tls",
        message_bytes=16384, scheduler="least-loaded",
        duration_s=0.006, warmup_s=0.001, seed=1,
    ))


def bench_scenario_open_spill() -> dict:
    return _scenario_entry(ClusterScenario(
        servers=2, channels=4, ulp="deflate", placement="smartdimm",
        message_bytes=16384, mode="open", arrival="bursty",
        rate_rps=100e3, burst_rps=160e3, base_s=0.008, burst_s=0.014,
        dsa_bytes_per_sec=300e6, scheduler="adaptive-spill",
        duration_s=0.03, warmup_s=0.004, seed=7,
    ))


def bench_all(repeats: int = 3) -> dict:
    return {
        "kernel_timeout": _best_of(repeats, bench_kernel_timeout),
        "kernel_process": _best_of(repeats, bench_kernel_process),
        "scenario_closed_tls": _best_of(repeats, bench_scenario_closed_tls),
        "scenario_open_spill": _best_of(repeats, bench_scenario_open_spill),
    }


def write_results(results: dict, path: str = RESULTS_PATH) -> str:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main() -> int:
    results = bench_all()
    for section, entry in sorted(results.items()):
        print("%-22s %8.0fk events/s  (%.3fs wall, %d events)"
              % (section, entry["events_per_sec"] / 1e3, entry["wall_s"],
                 entry["events"]))
    path = write_results(results)
    print("wrote", path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
