"""Replication benchmark wrapper: the BENCH_replication.json producer.

Thin adapter between :mod:`repro.replication.sweep` and the perf gate.
The sweep is a deterministic simulation (identical seed => identical
payload), so ``bench_all`` runs it once — nothing to repeat — and returns
the payload ``check_regression.py`` gates:

* **property gate** (absolute, no baseline needed): the consistency
  checker must report zero violations across every (protocol, placement)
  cell, and SmartDIMM hop placement must beat CPU onload on goodput
  under fault at 16 KB values (the PR's headline claim: accelerating the
  per-hop compress+encrypt stage is worth the most exactly when failover
  traffic is squeezing the survivors);
* **baseline gate**: the SmartDIMM goodput-under-fault figures and the
  smartdimm/cpu ratio must stay within tolerance of the committed
  baseline.
"""

from __future__ import annotations

import os

from repro.replication import sweep

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_replication.json")

#: SmartDIMM must beat CPU onload on goodput under fault by at least this.
SPEEDUP_FLOOR = 1.0

#: Baseline-compared summary metrics (all "min"-guarded floors).
GUARDED_METRICS = ("smartdimm_over_cpu_goodput_fault",
                   "abd_smartdimm_goodput_fault_rps",
                   "chain_smartdimm_goodput_fault_rps")


def bench_all(repeats: int = 1) -> dict:
    """Run the full replication sweep (deterministic; `repeats` ignored)."""
    return sweep.run_replication_suite(seed=7)


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Replication regressions as human-readable strings (empty = pass)."""
    regressions = []
    summary = fresh["summary"]
    if summary["total_violations"]:
        regressions.append(
            "replication: %d consistency violations — the protocols or the "
            "checker regressed" % summary["total_violations"])
    ratio = summary["smartdimm_over_cpu_goodput_fault"] or 0.0
    if ratio <= SPEEDUP_FLOOR:
        regressions.append(
            "replication: smartdimm goodput under fault is %.2fx cpu "
            "(must exceed %.2fx)" % (ratio, SPEEDUP_FLOOR))
    base_summary = baseline.get("summary", {})
    for metric in GUARDED_METRICS:
        base_value = base_summary.get(metric)
        if base_value is None:
            continue  # baseline predates this metric
        fresh_value = summary.get(metric)
        if fresh_value is None:
            regressions.append(
                "replication: %s missing from fresh run" % metric)
            continue
        floor = (1.0 - tolerance) * base_value
        if fresh_value < floor:
            regressions.append(
                "replication: %s %.2f < floor %.2f (baseline %.2f, -%.0f%%)"
                % (metric, fresh_value, floor, base_value,
                   100.0 * (1.0 - fresh_value / base_value)))
    return regressions


def write_results(results: dict, path: str = RESULTS_PATH) -> str:
    """Persist `results` exactly as the CLI does; returns the path."""
    with open(path, "w") as handle:
        handle.write(sweep.to_json(results))
    return path


def main() -> None:
    """CLI entry: run the sweep, print the summary, write the baseline."""
    results = bench_all()
    print(sweep.render(results))
    print("wrote", write_results(results))


if __name__ == "__main__":
    main()
