"""Table I: slowdown when co-running secure Nginx with 505.mcf.

Paper results (Sec. VII-C), slowdowns relative to each configuration's solo
run — Nginx: CPU 15.8%, SmartNIC 7.3%, QuickAssist 28.7%, SmartDIMM 9.5%;
mcf: 15.5%, 8.7%, 37.9%, 10.3%.  SmartDIMM interferes least on both sides
even while serving the most requests (569K vs 377K for the SmartNIC).
"""

from conftest import run_once

from repro.sim.server import Placement, Ulp, WorkloadSpec, corun

PLACEMENTS = [Placement.CPU, Placement.SMARTNIC, Placement.QUICKASSIST, Placement.SMARTDIMM]


def _sweep():
    return {
        placement: corun(WorkloadSpec(ulp=Ulp.TLS, placement=placement, message_bytes=4096))
        for placement in PLACEMENTS
    }


def test_table1_corun_slowdowns(benchmark, report):
    results = run_once(benchmark, _sweep)

    lines = ["Table I — co-run slowdowns (secure Nginx + 10x mcf)",
             f"{'placement':>12} {'nginx slowdown':>14} {'mcf slowdown':>13} {'corun RPS':>10}"]
    for placement in PLACEMENTS:
        result = results[placement]
        lines.append(
            f"{placement.value:>12} {result.nginx_slowdown:>13.1%} "
            f"{result.corunner_slowdown:>12.1%} {result.nginx_corun.rps:>10,.0f}"
        )
    report("table1_isolation", lines)

    nginx = {p: results[p].nginx_slowdown for p in PLACEMENTS}
    mcf = {p: results[p].corunner_slowdown for p in PLACEMENTS}
    # SmartDIMM disturbs and is disturbed least among host-side competitors.
    assert nginx[Placement.SMARTDIMM] < nginx[Placement.CPU]
    assert mcf[Placement.SMARTDIMM] < mcf[Placement.CPU]
    # QuickAssist is the worst neighbour for mcf (paper: 37.9%).
    assert mcf[Placement.QUICKASSIST] == max(mcf.values())
    assert 0.25 < mcf[Placement.QUICKASSIST] < 0.45
    # CPU configuration slowdowns in the paper's range (~15%).
    assert 0.10 < nginx[Placement.CPU] < 0.25
    assert 0.10 < mcf[Placement.CPU] < 0.25
    # SmartDIMM still achieves the highest absolute co-run RPS (Sec. VII-C).
    rps = {p: results[p].nginx_corun.rps for p in PLACEMENTS}
    assert max(rps, key=rps.get) is Placement.SMARTDIMM
