"""Sec. IV-D claim: the gap between the first sbuf rdCAS and the first dbuf
wrCAS exceeds the per-line DSA latency, so SmartDIMM needs no polling in the
common case.

The paper measured >1us of slack on AxDIMM; in controller cycles at
DDR4-3200 that is ~1600 cycles, far above the 64-byte ULP latency.  We
measure the same quantity from the simulated command stream and check it
covers the modelled DSA latency — the structural reason S13 (ALERT_N) stays
rare.
"""

from conftest import run_once

from repro.core.dsa.base import UlpKind
from repro.core.dsa.tls_dsa import TLSOffloadContext
from repro.core.offload_api import SessionConfig, SmartDIMMSession
from repro.dram.commands import PAGE_SIZE
from repro.sim.tracing import CommandTraceRecorder


def _measure():
    session = SmartDIMMSession(
        SessionConfig(memory_bytes=16 * 1024 * 1024, llc_bytes=512 * 1024, trace=True)
    )
    slacks = []
    for i in range(6):
        sbuf = session.driver.alloc_pages(1)
        dbuf = session.driver.alloc_pages(1)
        session.write(sbuf, bytes([i]) * PAGE_SIZE)
        context = TLSOffloadContext(key=bytes(16), nonce=bytes(12), record_length=PAGE_SIZE - 16)
        session.compcpy.compcpy(dbuf, sbuf, PAGE_SIZE, context, UlpKind.TLS_ENCRYPT)
        recorder = CommandTraceRecorder(session.mc)
        summary = recorder.summarize((sbuf, sbuf + PAGE_SIZE), (dbuf, dbuf + PAGE_SIZE))
        slacks.append(summary.read_write_slack_cycles)
        session.driver.free_pages(sbuf)
        session.driver.free_pages(dbuf)
    return slacks, session


def test_rdcas_wrcas_slack_covers_dsa_latency(benchmark, report):
    slacks, session = run_once(benchmark, _measure)
    ns_per_cycle = session.mc.timing.cycle_time_ns
    latency = session.device.config.dsa_line_latency_cycles
    lines = ["Sec. IV-D claim — slack between first sbuf rdCAS and first dbuf wrCAS",
             f"per-offload slack (cycles): {slacks}",
             f"minimum slack: {min(slacks)} cycles = {min(slacks) * ns_per_cycle:.0f} ns",
             f"modelled per-line DSA latency: {latency} cycles",
             f"ALERT_N retries observed: {session.mc.stats.alerts}"]
    report("claim_rdwr_slack", lines)

    # The slack always covers the 64-byte ULP latency...
    assert min(slacks) > latency
    # ...so optimistic completion needs no retries in the common case.
    assert session.mc.stats.alerts == 0
